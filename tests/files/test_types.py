"""Tests for file types and size models."""

import pytest

from repro.files.types import (FileType, SIZE_MODELS, TYPE_EXTENSIONS,
                               draw_size, extension_for,
                               is_downloadable_type, type_for_extension)
from repro.simnet.rng import SeededStream


class TestTypeMapping:
    @pytest.mark.parametrize("extension,expected", [
        ("mp3", FileType.AUDIO), ("avi", FileType.VIDEO),
        ("zip", FileType.ARCHIVE), ("rar", FileType.ARCHIVE),
        ("exe", FileType.EXECUTABLE), ("scr", FileType.EXECUTABLE),
        ("jpg", FileType.IMAGE), ("pdf", FileType.DOCUMENT),
    ])
    def test_known_extensions(self, extension, expected):
        assert type_for_extension(extension) is expected

    def test_case_and_dot_insensitive(self):
        assert type_for_extension(".EXE") is FileType.EXECUTABLE
        assert type_for_extension("Zip") is FileType.ARCHIVE

    def test_unknown_extension_is_document(self):
        assert type_for_extension("xyz") is FileType.DOCUMENT

    @pytest.mark.parametrize("extension", ["zip", "rar", "exe", "msi",
                                           "scr", "com", "ace", "tar"])
    def test_downloadable_subset(self, extension):
        assert is_downloadable_type(extension)

    @pytest.mark.parametrize("extension", ["mp3", "avi", "jpg", "pdf", "xyz"])
    def test_not_downloadable_subset(self, extension):
        assert not is_downloadable_type(extension)

    def test_counted_as_downloadable_property(self):
        assert FileType.ARCHIVE.counted_as_downloadable
        assert FileType.EXECUTABLE.counted_as_downloadable
        assert not FileType.AUDIO.counted_as_downloadable

    def test_every_type_has_extensions_and_size_model(self):
        for file_type in FileType:
            assert TYPE_EXTENSIONS[file_type]
            assert file_type in SIZE_MODELS


class TestSizes:
    def test_draw_within_bounds(self):
        stream = SeededStream(1, "sizes")
        for file_type in FileType:
            model = SIZE_MODELS[file_type]
            for _ in range(50):
                size = draw_size(file_type, stream)
                assert model.floor_bytes <= size <= model.ceiling_bytes

    def test_audio_median_reasonable(self):
        stream = SeededStream(2, "audio")
        sizes = sorted(draw_size(FileType.AUDIO, stream)
                       for _ in range(500))
        median = sizes[len(sizes) // 2]
        assert 3e6 < median < 6e6

    def test_video_bigger_than_audio(self):
        stream = SeededStream(3, "cmp")
        video = sum(draw_size(FileType.VIDEO, stream)
                    for _ in range(100)) / 100
        audio = sum(draw_size(FileType.AUDIO, stream)
                    for _ in range(100)) / 100
        assert video > 10 * audio

    def test_extension_for_draws_from_type_pool(self):
        stream = SeededStream(4, "ext")
        valid = {name for name, _ in TYPE_EXTENSIONS[FileType.ARCHIVE]}
        for _ in range(50):
            assert extension_for(FileType.ARCHIVE, stream) in valid
