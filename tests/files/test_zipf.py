"""Tests for the Zipf sampler."""

import pytest

from repro.files.zipf import ZipfSampler
from repro.simnet.rng import SeededStream


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(50, 0.9)
        total = sum(sampler.probability(rank) for rank in range(1, 51))
        assert total == pytest.approx(1.0)

    def test_probabilities_monotonic(self):
        sampler = ZipfSampler(50, 0.9)
        probabilities = [sampler.probability(rank) for rank in range(1, 51)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_alpha_zero_is_uniform(self):
        sampler = ZipfSampler(10, 0.0)
        for rank in range(1, 11):
            assert sampler.probability(rank) == pytest.approx(0.1)

    def test_sample_ranks_in_range(self):
        sampler = ZipfSampler(20, 1.0)
        stream = SeededStream(1, "z")
        for rank in sampler.sample(stream, 500):
            assert 1 <= rank <= 20

    def test_sample_skews_to_popular(self):
        sampler = ZipfSampler(100, 1.0)
        stream = SeededStream(2, "z")
        ranks = sampler.sample(stream, 5000)
        assert ranks.count(1) > 5 * max(1, ranks.count(50))

    def test_sample_empirical_matches_probability(self):
        sampler = ZipfSampler(10, 0.8)
        stream = SeededStream(3, "z")
        ranks = sampler.sample(stream, 20000)
        empirical = ranks.count(1) / len(ranks)
        assert empirical == pytest.approx(sampler.probability(1), abs=0.02)

    def test_sample_one(self):
        sampler = ZipfSampler(5, 1.0)
        stream = SeededStream(4, "z")
        assert 1 <= sampler.sample_one(stream) <= 5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler(10, -0.1)
        sampler = ZipfSampler(10, 1.0)
        with pytest.raises(ValueError):
            sampler.probability(0)
        with pytest.raises(ValueError):
            sampler.probability(11)
        with pytest.raises(ValueError):
            sampler.sample(SeededStream(1, "z"), -1)
