"""Tests for the shared library and its keyword matching."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.files.library import SharedFile, SharedLibrary
from repro.files.payload import Blob


def make_file(name, size=1000, key=None):
    blob = Blob(content_key=key or name, extension=name.rsplit(".", 1)[-1],
                size=size)
    return SharedFile.make(name=name, size=size,
                           extension=blob.extension, blob=blob)


@pytest.fixture()
def library():
    lib = SharedLibrary()
    lib.add(make_file("madonna_angel.mp3"))
    lib.add(make_file("madonna_crazy_remix.mp3"))
    lib.add(make_file("photoshop_crack.zip"))
    return lib


class TestAddRemove:
    def test_len(self, library):
        assert len(library) == 3

    def test_add_idempotent(self, library):
        shared = library.files()[0]
        library.add(shared)
        assert len(library) == 3

    def test_remove(self, library):
        target = library.files()[0]
        library.remove(target.file_id)
        assert len(library) == 2
        assert library.match("madonna angel") == []

    def test_remove_unknown_is_noop(self, library):
        library.remove(10**9)
        assert len(library) == 3

    def test_total_bytes(self, library):
        assert library.total_bytes() == 3000


class TestMatching:
    def test_single_token(self, library):
        assert len(library.match("madonna")) == 2

    def test_conjunctive(self, library):
        matches = library.match("madonna angel")
        assert len(matches) == 1
        assert matches[0].name == "madonna_angel.mp3"

    def test_no_partial_token_match(self, library):
        assert library.match("madon") == []

    def test_case_insensitive(self, library):
        assert len(library.match("MADONNA Angel")) == 1

    def test_unmatched_token_kills_query(self, library):
        assert library.match("madonna zebra") == []

    def test_empty_query_matches_nothing(self, library):
        assert library.match("") == []
        assert library.match("  _ ") == []

    def test_limit(self, library):
        assert len(library.match("madonna", limit=1)) == 1

    def test_extension_is_a_token(self, library):
        assert len(library.match("zip")) == 1


class TestLookups:
    def test_by_urn(self, library):
        target = library.files()[1]
        assert library.by_urn(target.sha1_urn) is target
        assert library.by_urn("urn:sha1:NOPE") is None

    def test_by_md5(self, library):
        target = library.files()[2]
        assert library.by_md5(target.blob.md5_hex()) is target
        assert library.by_md5("0" * 32) is None

    def test_all_tokens_cover_names(self, library):
        tokens = set(library.all_tokens())
        assert {"madonna", "angel", "crazy", "photoshop"} <= tokens

    def test_files_sorted_by_id(self, library):
        ids = [shared.file_id for shared in library.files()]
        assert ids == sorted(ids)


@given(st.lists(st.sampled_from(
    ["alpha", "beta", "gamma", "delta"]), min_size=1, max_size=4,
    unique=True))
@settings(max_examples=50, deadline=None)
def test_matching_invariant_every_token_present(tokens):
    """Property: a file matches a query iff it contains every query token."""
    lib = SharedLibrary()
    shared = make_file("_".join(tokens) + ".exe")
    lib.add(shared)
    assert lib.match(" ".join(tokens)) == [shared]
    assert lib.match(" ".join(tokens + ["omega"])) == []
