"""Tests for naming and tokenization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.files.names import (POPULAR_QUERIES, WORD_POOLS, NameGenerator,
                               normalize, tokenize)
from repro.files.types import FileType
from repro.simnet.rng import SeededStream


class TestTokenize:
    def test_splits_on_separators(self):
        assert tokenize("madonna_angel-remix.live.mp3") == frozenset(
            {"madonna", "angel", "remix", "live", "mp3"})

    def test_lowercases(self):
        assert tokenize("Madonna ANGEL") == frozenset({"madonna", "angel"})

    def test_empty(self):
        assert tokenize("") == frozenset()
        assert tokenize("___") == frozenset()

    def test_numbers_kept(self):
        assert "2006" in tokenize("top hits 2006")

    @given(st.text(max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_total_function(self, text):
        tokens = tokenize(text)
        assert all(token == token.lower() for token in tokens)


class TestNormalize:
    def test_collapses_separators(self):
        assert normalize("A__b--c.d") == "a b c d"

    def test_strips(self):
        assert normalize("  hello ") == "hello"


class TestNameGenerator:
    def make(self):
        return NameGenerator(SeededStream(7, "names"))

    def test_work_keywords_nonempty_unique(self):
        generator = self.make()
        for file_type in FileType:
            keywords = generator.work_keywords(file_type)
            assert 2 <= len(keywords) <= 3
            assert len(set(keywords)) == len(keywords)

    def test_decorate_contains_keywords_and_extension(self):
        generator = self.make()
        for _ in range(30):
            name = generator.decorate(("madonna", "angel"), "mp3")
            assert name.endswith(".mp3")
            tokens = tokenize(name)
            assert {"madonna", "angel"} <= tokens

    def test_query_from_keywords_limits_terms(self):
        generator = self.make()
        query = generator.query_from_keywords(("a", "b", "c"), max_terms=2)
        assert query == "a b"

    def test_popular_queries_tokens_overlap_pools(self):
        # bait naming relies on popular-query tokens existing in the pools
        pool_tokens = set()
        for words in WORD_POOLS.values():
            pool_tokens.update(words)
        hits = sum(1 for query in POPULAR_QUERIES
                   if tokenize(query) & pool_tokens)
        assert hits >= len(POPULAR_QUERIES) // 2
