"""Tests for the content catalog."""

from collections import Counter

import pytest

from repro.files.catalog import CatalogConfig, ContentCatalog
from repro.files.types import FileType
from repro.simnet.rng import SeededStream


@pytest.fixture()
def catalog():
    return ContentCatalog(CatalogConfig(works=200),
                          SeededStream(3, "catalog"))


class TestGeneration:
    def test_work_count(self, catalog):
        assert len(catalog.works) == 200

    def test_every_work_has_versions(self, catalog):
        for work in catalog.works:
            versions = catalog.versions_by_work[work.work_id]
            assert versions
            for version in versions:
                assert version.work is work
                assert version.size > 0

    def test_type_mix_proportions_hold_in_prefixes(self, catalog):
        # the deterministic interleave keeps every prefix balanced
        for prefix in (20, 50, 200):
            counts = Counter(work.file_type
                             for work in catalog.works[:prefix])
            audio_share = counts[FileType.AUDIO] / prefix
            assert 0.36 <= audio_share <= 0.56  # config says 0.46
            downloadable = (counts[FileType.ARCHIVE]
                            + counts[FileType.EXECUTABLE]) / prefix
            assert 0.15 <= downloadable <= 0.35  # config says 0.25

    def test_same_seed_same_catalog(self):
        a = ContentCatalog(CatalogConfig(works=50), SeededStream(1, "c"))
        b = ContentCatalog(CatalogConfig(works=50), SeededStream(1, "c"))
        assert [w.keywords for w in a.works] == [w.keywords for w in b.works]

    def test_version_identity_stable(self, catalog):
        version = catalog.versions_by_work[0][0]
        assert version.sha1_urn == version.blob.sha1_urn()

    def test_total_versions(self, catalog):
        assert catalog.total_versions == sum(
            len(v) for v in catalog.versions_by_work.values())
        assert catalog.total_versions >= 200


class TestSampling:
    def test_sample_work_skews_popular(self, catalog):
        stream = SeededStream(9, "sample")
        counts = Counter(catalog.sample_work(stream).work_id
                         for _ in range(5000))
        top_20 = sum(counts[work_id] for work_id in range(20))
        bottom_20 = sum(counts[work_id] for work_id in range(180, 200))
        assert top_20 > 3 * max(1, bottom_20)

    def test_sample_version_valid(self, catalog):
        stream = SeededStream(9, "sample2")
        for _ in range(50):
            version = catalog.sample_version(stream)
            assert version in catalog.versions_by_work[version.work.work_id]

    def test_popular_works_prefix(self, catalog):
        top = catalog.popular_works(10)
        assert [w.work_id for w in top] == list(range(10))

    def test_decorate_filename_contains_keywords(self, catalog):
        from repro.files.names import tokenize
        version = catalog.versions_by_work[0][0]
        name = catalog.decorate_filename(version)
        assert set(version.work.keywords) <= tokenize(name)
