"""Tests for sparse payload blobs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.files.payload import MAGIC_BYTES, Blob


def make_blob(**overrides):
    defaults = dict(content_key="k1", extension="exe", size=1000)
    defaults.update(overrides)
    return Blob(**defaults)


class TestIdentity:
    def test_same_spec_same_hashes(self):
        assert make_blob().sha1_urn() == make_blob().sha1_urn()
        assert make_blob().md5_hex() == make_blob().md5_hex()

    def test_urn_format(self):
        urn = make_blob().sha1_urn()
        assert urn.startswith("urn:sha1:")
        assert len(urn) == len("urn:sha1:") + 32  # base32 sha1

    def test_md5_format(self):
        md5 = make_blob().md5_hex()
        assert len(md5) == 32
        int(md5, 16)  # valid hex

    def test_key_changes_hash(self):
        assert make_blob().sha1_urn() != make_blob(
            content_key="k2").sha1_urn()

    def test_size_changes_hash(self):
        assert make_blob().sha1_urn() != make_blob(size=1001).sha1_urn()

    def test_markers_change_hash(self):
        assert make_blob().sha1_urn() != make_blob(
            markers=(b"SIG",)).sha1_urn()

    def test_members_change_hash(self):
        inner = make_blob(content_key="inner")
        assert make_blob().sha1_urn() != make_blob(
            members=(inner,)).sha1_urn()


class TestHeader:
    def test_header_starts_with_magic(self):
        blob = make_blob(extension="exe")
        assert blob.header().startswith(MAGIC_BYTES["exe"])

    def test_header_length(self):
        assert len(make_blob().header(64)) == 64
        assert len(make_blob().header(8)) == 8

    def test_header_deterministic(self):
        assert make_blob().header() == make_blob().header()

    def test_unknown_extension_gets_neutral_header(self):
        blob = make_blob(extension="weird")
        assert len(blob.header(16)) == 16


class TestMarkersAndMembers:
    def test_contains_marker_direct(self):
        blob = make_blob(markers=(b"SIG1",))
        assert blob.contains_marker(b"SIG1")
        assert not blob.contains_marker(b"SIG2")

    def test_contains_marker_nested(self):
        inner = make_blob(content_key="inner", markers=(b"DEEP",))
        outer = make_blob(extension="zip", members=(inner,))
        assert outer.contains_marker(b"DEEP")

    def test_iter_members_depth_first(self):
        leaf = make_blob(content_key="leaf")
        middle = make_blob(content_key="middle", members=(leaf,))
        root = make_blob(content_key="root", members=(middle,))
        keys = [blob.content_key for blob in root.iter_members()]
        assert keys == ["root", "middle", "leaf"]


@given(key=st.text(min_size=1, max_size=30),
       size=st.integers(min_value=1, max_value=10**12))
@settings(max_examples=60, deadline=None)
def test_identity_is_function_of_spec(key, size):
    a = Blob(content_key=key, extension="zip", size=size)
    b = Blob(content_key=key, extension="zip", size=size)
    assert a.sha1_urn() == b.sha1_urn()
    assert a.md5_hex() == b.md5_hex()
