"""Shared fixtures.

The two session-scoped campaign fixtures run one scaled-down campaign per
network and are reused by every analysis/integration test -- a campaign
is deterministic for a given seed, so sharing is safe and keeps the suite
fast.
"""

from __future__ import annotations

import pytest

from repro.core.measure import (CampaignConfig, run_limewire_campaign,
                                run_openft_campaign)
from repro.simnet.kernel import Simulator

#: One seed for the whole suite; integration bands were checked across
#: several seeds, this one sits mid-band.
SUITE_SEED = 2


@pytest.fixture()
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator(seed=SUITE_SEED)


@pytest.fixture(scope="session")
def campaign_config() -> CampaignConfig:
    """The scaled-down campaign configuration shared by the suite."""
    return CampaignConfig(seed=SUITE_SEED, duration_days=1.0)


@pytest.fixture(scope="session")
def limewire_campaign(campaign_config):
    """A finished 1-virtual-day Limewire campaign."""
    return run_limewire_campaign(campaign_config)


@pytest.fixture(scope="session")
def openft_campaign(campaign_config):
    """A finished 1-virtual-day OpenFT campaign."""
    return run_openft_campaign(campaign_config)
