"""Tests for the protocol-overhead analysis."""

import pytest

from repro.core.analysis.overhead import (classify_gnutella_frame,
                                          classify_openft_packet,
                                          overhead_report)
from repro.gnutella.guid import new_guid
from repro.gnutella.messages import HitResult, Ping, Query, QueryHit, frame
from repro.openft.packets import SearchRequest, encode_packet
from repro.simnet.rng import SeededStream
from repro.simnet.trace import TransportTrace

GUID = new_guid(SeededStream(1, "g"))


class TestClassifiers:
    def test_gnutella_kinds(self):
        assert classify_gnutella_frame(
            frame(GUID, Query(0, "x"), ttl=1)) == "query"
        assert classify_gnutella_frame(
            frame(GUID, Ping(), ttl=1)) == "ping"
        hit = QueryHit(port=1, address="1.2.3.4", speed_kbps=1,
                       results=(HitResult(1, 10, "a.exe", ""),),
                       servent_guid=GUID)
        assert classify_gnutella_frame(
            frame(GUID, hit, ttl=1)) == "query-hit"
        assert classify_gnutella_frame(b"short") == "short"

    def test_openft_kinds(self):
        wire = encode_packet(SearchRequest(search_id=1, ttl=1, query="q"))
        assert classify_openft_packet(wire) == "search"
        assert classify_openft_packet(b"\x00") == "short"
        assert classify_openft_packet(b"\x00\x00\xff\xff") == "other"


class TestOverheadOnOverlay:
    def test_live_capture_composition(self, sim):
        """Capture a window of real overlay traffic and check that
        queries and hits dominate the mix."""
        from tests.gnutella.conftest import SmallWorld

        world = SmallWorld(sim)
        trace = TransportTrace(world.transport, classify_gnutella_frame)
        with trace:
            for query in ("free music", "photoshop crack", "norton full"):
                world.query(query)
        rows = overhead_report(trace)
        kinds = {row.kind for row in rows}
        assert "query" in kinds
        assert "query-hit" in kinds
        shares = sum(row.byte_share for row in rows)
        assert shares == pytest.approx(1.0)
        hit_row = next(row for row in rows if row.kind == "query-hit")
        assert hit_row.bytes > 0
