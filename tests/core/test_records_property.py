"""Property tests: record persistence is lossless for arbitrary content."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.measure.records import ResponseRecord

_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=60)


@st.composite
def records(draw):
    record = ResponseRecord(
        network=draw(st.sampled_from(["limewire", "openft"])),
        time=draw(st.floats(min_value=0, max_value=1e7,
                            allow_nan=False, allow_infinity=False)),
        query=draw(_text),
        responder_host=draw(st.sampled_from(
            ["1.2.3.4", "192.168.0.7", "10.9.8.7", "203.0.113.5"])),
        responder_port=draw(st.integers(min_value=0, max_value=65535)),
        responder_key=draw(_text),
        filename=draw(_text),
        size=draw(st.integers(min_value=0, max_value=2**40)),
        content_id=draw(_text),
        push_needed=draw(st.booleans()),
        busy=draw(st.booleans()),
        vendor=draw(st.sampled_from(["LIME", "BEAR", "GIFT", ""])),
    )
    record.download_attempted = draw(st.booleans())
    record.downloaded = draw(st.booleans())
    record.malware_name = draw(st.one_of(st.none(), _text))
    return record


@given(records())
@settings(max_examples=150, deadline=None)
def test_json_roundtrip_lossless(record):
    assert ResponseRecord.from_json(record.to_json()) == record


@given(records())
@settings(max_examples=100, deadline=None)
def test_derived_fields_total(record):
    # derived properties never raise, whatever the filename looks like
    assert isinstance(record.extension, str)
    assert isinstance(record.file_type, str)
    assert isinstance(record.counts_as_downloadable_type, bool)
    assert record.day >= 0


@given(st.lists(records(), max_size=20))
@settings(max_examples=50, deadline=None)
def test_store_roundtrip_lossless(tmp_path_factory, record_list):
    from repro.core.measure.store import MeasurementStore

    store = MeasurementStore("limewire")
    for record in record_list:
        record.network = "limewire"
        store.add(record)
    path = tmp_path_factory.mktemp("prop") / "store.jsonl"
    store.save(path)
    loaded = MeasurementStore.load(path)
    assert loaded.records() == store.records()
