"""Tests for the multi-seed experiment runner."""

import json

import pytest

from repro.core.experiments import (HEADLINE_METRICS, CheckpointJournal,
                                    MetricSummary, run_replications)
from repro.core.measure.campaign import CampaignConfig
from repro.faults import FaultPlan, WorkerCrash, WorkerHang, WorkerStall
from repro.peers.profiles import GnutellaProfile
from repro.resilience import (SupervisionPolicy, frame_line, parse_frame,
                              scan_frames)

#: tiny-but-real campaign shape shared by the self-healing tests
TINY = dict(duration_days=0.05)
TINY_PROFILE = GnutellaProfile().scaled(0.3)


def tiny_config(**kwargs):
    return CampaignConfig(seed=0, **TINY, **kwargs)


def crash_plan(seeds, attempts=1):
    return FaultPlan(worker_crash=WorkerCrash(seeds=tuple(seeds),
                                              attempts=attempts))


class TestMetricSummary:
    def test_aggregates(self):
        summary = MetricSummary(name="x", values=(0.6, 0.7, 0.8))
        assert summary.mean == pytest.approx(0.7)
        assert summary.low == 0.6
        assert summary.high == 0.8
        assert summary.within(0.5, 0.9)
        assert not summary.within(0.65, 0.9)

    def test_empty(self):
        summary = MetricSummary(name="x", values=())
        assert summary.mean == 0.0


class TestRunReplications:
    @pytest.fixture(scope="class")
    def report(self):
        # two tiny replications of a scaled-down world
        return run_replications(
            "limewire", seeds=(3, 4),
            config=CampaignConfig(seed=0, duration_days=0.25),
            profile=GnutellaProfile().scaled(0.5))

    def test_all_metrics_present(self, report):
        assert set(report.metrics) == set(HEADLINE_METRICS["limewire"])
        for summary in report.metrics.values():
            assert len(summary.values) == 2

    def test_prevalence_band_across_seeds(self, report):
        assert report.metrics["prevalence"].within(0.45, 0.90)

    def test_render(self, report):
        text = report.render()
        assert "limewire" in text
        assert "prevalence" in text
        assert "%" in text

    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError):
            run_replications("kazaa", seeds=(1,),
                             config=CampaignConfig())


class TestSelfHealing:
    @pytest.fixture(scope="class")
    def baseline(self):
        return run_replications("limewire", seeds=(1, 2),
                                config=tiny_config(),
                                profile=TINY_PROFILE)

    def test_crashed_worker_heals_on_retry(self, baseline):
        report = run_replications(
            "limewire", seeds=(1, 2),
            config=tiny_config(fault_plan=crash_plan([2])),
            profile=TINY_PROFILE)
        assert not report.degraded
        assert report.failures == ()
        assert report.completed_seeds == (1, 2)
        # the retry reruns the same pure function: metrics identical
        for name, summary in baseline.metrics.items():
            assert report.metrics[name].values == summary.values

    def test_crashing_the_retry_quarantines_the_seed(self, baseline):
        report = run_replications(
            "limewire", seeds=(1, 2),
            config=tiny_config(fault_plan=crash_plan([2], attempts=2)),
            profile=TINY_PROFILE)
        assert report.degraded
        assert report.completed_seeds == (1,)
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.seed == 2
        assert failure.attempts == 2
        assert "injected worker crash" in failure.error
        # surviving seed's metrics are untouched by the quarantine
        for name, summary in baseline.metrics.items():
            assert report.metrics[name].values == (summary.values[0],)

    def test_degraded_report_renders_the_quarantine(self):
        report = run_replications(
            "limewire", seeds=(1, 2),
            config=tiny_config(fault_plan=crash_plan([2], attempts=2)),
            profile=TINY_PROFILE)
        text = report.render()
        assert "DEGRADED" in text
        assert "[2]" in text

    def test_every_seed_dying_raises(self):
        with pytest.raises(RuntimeError, match="every replication seed"):
            run_replications(
                "limewire", seeds=(1,),
                config=tiny_config(fault_plan=crash_plan([1], attempts=2)),
                profile=TINY_PROFILE)


class TestCheckpoint:
    def test_resume_completes_interrupted_run(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        uninterrupted = run_replications("limewire", seeds=(1, 2),
                                         config=tiny_config(),
                                         profile=TINY_PROFILE)
        # "interrupt": seed 2's worker dies twice, so only seed 1 lands
        degraded = run_replications(
            "limewire", seeds=(1, 2),
            config=tiny_config(fault_plan=crash_plan([2], attempts=2)),
            profile=TINY_PROFILE, checkpoint=journal)
        assert degraded.completed_seeds == (1,)
        # resume without the chaos: seed 1 read from the journal, seed 2
        # computed fresh -- the merged report matches an uninterrupted run
        resumed = run_replications("limewire", seeds=(1, 2),
                                   config=tiny_config(),
                                   profile=TINY_PROFILE,
                                   checkpoint=journal)
        assert not resumed.degraded
        assert resumed.completed_seeds == (1, 2)
        for name, summary in uninterrupted.metrics.items():
            assert resumed.metrics[name].values == summary.values

    def test_completed_seeds_are_not_recomputed(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        run_replications("limewire", seeds=(1,), config=tiny_config(),
                         profile=TINY_PROFILE, checkpoint=journal)
        entries = [parse_frame(line) for line in
                   journal.read_text().splitlines()]
        assert entries[0]["kind"] == "header"
        assert [e["seed"] for e in entries[1:]] == [1]
        # poison the recorded metrics: if the resume recomputed seed 1
        # the report would disagree with the journal
        entries[1]["metrics"] = {name: 0.123 for name
                                 in entries[1]["metrics"]}
        journal.write_text("\n".join(frame_line(e) for e in entries) + "\n")
        report = run_replications("limewire", seeds=(1,),
                                  config=tiny_config(),
                                  profile=TINY_PROFILE, checkpoint=journal)
        assert all(summary.values == (0.123,)
                   for summary in report.metrics.values())

    def test_config_change_invalidates_checkpoint(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        run_replications("limewire", seeds=(1,), config=tiny_config(),
                         profile=TINY_PROFILE, checkpoint=journal)
        with pytest.raises(ValueError, match="different experiment"):
            run_replications(
                "limewire", seeds=(1,),
                config=CampaignConfig(seed=0, duration_days=0.1),
                profile=TINY_PROFILE, checkpoint=journal)

    def test_non_checkpoint_file_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"kind": "something-else"}\n')
        with pytest.raises(ValueError, match="not a replication"):
            run_replications("limewire", seeds=(1,), config=tiny_config(),
                             profile=TINY_PROFILE, checkpoint=bogus)

    def test_fingerprint_mismatch_error_is_actionable(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        run_replications("limewire", seeds=(1,), config=tiny_config(),
                         profile=TINY_PROFILE, checkpoint=journal)
        with pytest.raises(ValueError) as excinfo:
            run_replications(
                "limewire", seeds=(1,),
                config=CampaignConfig(seed=0, duration_days=0.1),
                profile=TINY_PROFILE, checkpoint=journal)
        message = str(excinfo.value)
        # the hint must offer both ways out, plus the inspection tool
        assert "--checkpoint" in message
        assert "delete the file" in message
        assert "doctor" in message


class TestCheckpointCrashSafety:
    """The journal itself, without campaign runs: fast byte-level tests."""

    FINGERPRINT = "a" * 64

    def fill(self, path, seeds=(1, 2, 3)):
        journal = CheckpointJournal(path, self.FINGERPRINT)
        for seed in seeds:
            journal.record(seed, {"prevalence": 0.5 + seed / 10.0}, None)
        journal.close()
        return path.read_bytes()

    def test_truncation_at_every_byte_offset_recovers(self, tmp_path):
        """SIGKILL at any byte offset of a checkpoint append: every
        fully committed seed survives, no offset raises."""
        path = tmp_path / "cp.jsonl"
        data = self.fill(path)
        for cut in range(len(data) + 1):
            path.write_bytes(data[:cut])
            journal = CheckpointJournal(path, self.FINGERPRINT)
            journal.close()
            recovered = sorted(journal.completed)
            assert recovered == [1, 2, 3][:len(recovered)]
            # committed = lines wholly on disk; the torn record (if
            # any) is the only loss
            committed = data[:cut].count(b"\n") - 1  # minus the header
            assert len(recovered) >= max(0, committed)

    def test_append_after_torn_tail_lands_clean(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        data = self.fill(path, seeds=(1, 2))
        path.write_bytes(data[:-9])  # tear into seed 2's record
        journal = CheckpointJournal(path, self.FINGERPRINT)
        assert sorted(journal.completed) == [1]
        journal.record(5, {"prevalence": 0.9}, None)
        journal.close()
        scan = scan_frames(path)
        assert scan.healthy
        reloaded = CheckpointJournal(path, self.FINGERPRINT)
        assert sorted(reloaded.completed) == [1, 5]
        reloaded.close()

    def test_io_chaos_degrades_journaling_not_the_run(self, tmp_path):
        from repro.faults import DiskFull, HostIOFaults

        path = tmp_path / "cp.jsonl"
        plan = FaultPlan(io_clauses=(DiskFull(at_ops=(2,)),))
        journal = CheckpointJournal(path, self.FINGERPRINT,
                                    io=HostIOFaults(plan, seed=1))
        for seed in (1, 2, 3):
            journal.record(seed, {"prevalence": 0.5}, None)
        journal.close()
        # op 2 = seed 2's append failed; the run kept going and the
        # file stayed parseable
        assert journal.write_errors == 1
        assert sorted(journal.completed) == [1, 2, 3]
        reloaded = CheckpointJournal(path, self.FINGERPRINT)
        assert 1 in reloaded.completed and 3 in reloaded.completed
        assert 2 not in reloaded.completed  # its append was the casualty
        reloaded.close()


class TestSupervisedReplication:
    POLICY = SupervisionPolicy(deadline_s=120.0, stall_timeout_s=2.0,
                               heartbeat_s=0.2, requeues=1,
                               backoff_base_s=0.05, backoff_cap_s=0.5)

    @pytest.fixture(scope="class")
    def baseline(self):
        return run_replications("limewire", seeds=(1, 2),
                                config=tiny_config(),
                                profile=TINY_PROFILE)

    def test_supervised_run_is_bit_identical(self, baseline):
        report = run_replications("limewire", seeds=(1, 2),
                                  config=tiny_config(),
                                  profile=TINY_PROFILE, workers=2,
                                  supervision=self.POLICY)
        assert not report.degraded
        for name, summary in baseline.metrics.items():
            assert report.metrics[name].values == summary.values

    def test_hung_worker_is_quarantined_not_waited_for(self, baseline):
        kills = []
        plan = FaultPlan(worker_hang=WorkerHang(seeds=(2,), attempts=2,
                                                hang_s=120.0))
        report = run_replications("limewire", seeds=(1, 2),
                                  config=tiny_config(fault_plan=plan),
                                  profile=TINY_PROFILE, workers=2,
                                  supervision=self.POLICY,
                                  on_kill=kills.append)
        assert report.degraded
        assert report.completed_seeds == (1,)
        assert report.failures[0].seed == 2
        assert "supervision:" in report.failures[0].error
        # 2 kills per attempt (requeue + give up), 2 attempts
        assert len(kills) == 4
        for name, summary in baseline.metrics.items():
            assert report.metrics[name].values == (summary.values[0],)

    def test_hang_on_first_attempt_only_heals(self, baseline):
        plan = FaultPlan(worker_hang=WorkerHang(seeds=(2,), attempts=1,
                                                hang_s=120.0))
        report = run_replications("limewire", seeds=(1, 2),
                                  config=tiny_config(fault_plan=plan),
                                  profile=TINY_PROFILE, workers=2,
                                  supervision=self.POLICY)
        assert not report.degraded
        for name, summary in baseline.metrics.items():
            assert report.metrics[name].values == summary.values

    def test_short_stall_rides_through(self, baseline):
        kills = []
        plan = FaultPlan(worker_stall=WorkerStall(seeds=(1,), stall_s=0.5))
        report = run_replications("limewire", seeds=(1, 2),
                                  config=tiny_config(fault_plan=plan),
                                  profile=TINY_PROFILE, workers=2,
                                  supervision=self.POLICY,
                                  on_kill=kills.append)
        assert not report.degraded and kills == []
        for name, summary in baseline.metrics.items():
            assert report.metrics[name].values == summary.values

    def test_hang_clause_ignored_without_supervision(self, baseline):
        # unsupervised runs must not enforce hangs (they could never
        # cancel them); the plan is inert there
        plan = FaultPlan(worker_hang=WorkerHang(seeds=(1, 2),
                                                attempts=2, hang_s=120.0))
        report = run_replications("limewire", seeds=(1, 2),
                                  config=tiny_config(fault_plan=plan),
                                  profile=TINY_PROFILE)
        assert not report.degraded
        for name, summary in baseline.metrics.items():
            assert report.metrics[name].values == summary.values
