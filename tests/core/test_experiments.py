"""Tests for the multi-seed experiment runner."""

import pytest

from repro.core.experiments import (HEADLINE_METRICS, MetricSummary,
                                    run_replications)
from repro.core.measure.campaign import CampaignConfig
from repro.peers.profiles import GnutellaProfile


class TestMetricSummary:
    def test_aggregates(self):
        summary = MetricSummary(name="x", values=(0.6, 0.7, 0.8))
        assert summary.mean == pytest.approx(0.7)
        assert summary.low == 0.6
        assert summary.high == 0.8
        assert summary.within(0.5, 0.9)
        assert not summary.within(0.65, 0.9)

    def test_empty(self):
        summary = MetricSummary(name="x", values=())
        assert summary.mean == 0.0


class TestRunReplications:
    @pytest.fixture(scope="class")
    def report(self):
        # two tiny replications of a scaled-down world
        return run_replications(
            "limewire", seeds=(3, 4),
            config=CampaignConfig(seed=0, duration_days=0.25),
            profile=GnutellaProfile().scaled(0.5))

    def test_all_metrics_present(self, report):
        assert set(report.metrics) == set(HEADLINE_METRICS["limewire"])
        for summary in report.metrics.values():
            assert len(summary.values) == 2

    def test_prevalence_band_across_seeds(self, report):
        assert report.metrics["prevalence"].within(0.45, 0.90)

    def test_render(self, report):
        text = report.render()
        assert "limewire" in text
        assert "prevalence" in text
        assert "%" in text

    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError):
            run_replications("kazaa", seeds=(1,),
                             config=CampaignConfig())
