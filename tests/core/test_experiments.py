"""Tests for the multi-seed experiment runner."""

import json

import pytest

from repro.core.experiments import (HEADLINE_METRICS, MetricSummary,
                                    run_replications)
from repro.core.measure.campaign import CampaignConfig
from repro.faults import FaultPlan, WorkerCrash
from repro.peers.profiles import GnutellaProfile

#: tiny-but-real campaign shape shared by the self-healing tests
TINY = dict(duration_days=0.05)
TINY_PROFILE = GnutellaProfile().scaled(0.3)


def tiny_config(**kwargs):
    return CampaignConfig(seed=0, **TINY, **kwargs)


def crash_plan(seeds, attempts=1):
    return FaultPlan(worker_crash=WorkerCrash(seeds=tuple(seeds),
                                              attempts=attempts))


class TestMetricSummary:
    def test_aggregates(self):
        summary = MetricSummary(name="x", values=(0.6, 0.7, 0.8))
        assert summary.mean == pytest.approx(0.7)
        assert summary.low == 0.6
        assert summary.high == 0.8
        assert summary.within(0.5, 0.9)
        assert not summary.within(0.65, 0.9)

    def test_empty(self):
        summary = MetricSummary(name="x", values=())
        assert summary.mean == 0.0


class TestRunReplications:
    @pytest.fixture(scope="class")
    def report(self):
        # two tiny replications of a scaled-down world
        return run_replications(
            "limewire", seeds=(3, 4),
            config=CampaignConfig(seed=0, duration_days=0.25),
            profile=GnutellaProfile().scaled(0.5))

    def test_all_metrics_present(self, report):
        assert set(report.metrics) == set(HEADLINE_METRICS["limewire"])
        for summary in report.metrics.values():
            assert len(summary.values) == 2

    def test_prevalence_band_across_seeds(self, report):
        assert report.metrics["prevalence"].within(0.45, 0.90)

    def test_render(self, report):
        text = report.render()
        assert "limewire" in text
        assert "prevalence" in text
        assert "%" in text

    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError):
            run_replications("kazaa", seeds=(1,),
                             config=CampaignConfig())


class TestSelfHealing:
    @pytest.fixture(scope="class")
    def baseline(self):
        return run_replications("limewire", seeds=(1, 2),
                                config=tiny_config(),
                                profile=TINY_PROFILE)

    def test_crashed_worker_heals_on_retry(self, baseline):
        report = run_replications(
            "limewire", seeds=(1, 2),
            config=tiny_config(fault_plan=crash_plan([2])),
            profile=TINY_PROFILE)
        assert not report.degraded
        assert report.failures == ()
        assert report.completed_seeds == (1, 2)
        # the retry reruns the same pure function: metrics identical
        for name, summary in baseline.metrics.items():
            assert report.metrics[name].values == summary.values

    def test_crashing_the_retry_quarantines_the_seed(self, baseline):
        report = run_replications(
            "limewire", seeds=(1, 2),
            config=tiny_config(fault_plan=crash_plan([2], attempts=2)),
            profile=TINY_PROFILE)
        assert report.degraded
        assert report.completed_seeds == (1,)
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.seed == 2
        assert failure.attempts == 2
        assert "injected worker crash" in failure.error
        # surviving seed's metrics are untouched by the quarantine
        for name, summary in baseline.metrics.items():
            assert report.metrics[name].values == (summary.values[0],)

    def test_degraded_report_renders_the_quarantine(self):
        report = run_replications(
            "limewire", seeds=(1, 2),
            config=tiny_config(fault_plan=crash_plan([2], attempts=2)),
            profile=TINY_PROFILE)
        text = report.render()
        assert "DEGRADED" in text
        assert "[2]" in text

    def test_every_seed_dying_raises(self):
        with pytest.raises(RuntimeError, match="every replication seed"):
            run_replications(
                "limewire", seeds=(1,),
                config=tiny_config(fault_plan=crash_plan([1], attempts=2)),
                profile=TINY_PROFILE)


class TestCheckpoint:
    def test_resume_completes_interrupted_run(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        uninterrupted = run_replications("limewire", seeds=(1, 2),
                                         config=tiny_config(),
                                         profile=TINY_PROFILE)
        # "interrupt": seed 2's worker dies twice, so only seed 1 lands
        degraded = run_replications(
            "limewire", seeds=(1, 2),
            config=tiny_config(fault_plan=crash_plan([2], attempts=2)),
            profile=TINY_PROFILE, checkpoint=journal)
        assert degraded.completed_seeds == (1,)
        # resume without the chaos: seed 1 read from the journal, seed 2
        # computed fresh -- the merged report matches an uninterrupted run
        resumed = run_replications("limewire", seeds=(1, 2),
                                   config=tiny_config(),
                                   profile=TINY_PROFILE,
                                   checkpoint=journal)
        assert not resumed.degraded
        assert resumed.completed_seeds == (1, 2)
        for name, summary in uninterrupted.metrics.items():
            assert resumed.metrics[name].values == summary.values

    def test_completed_seeds_are_not_recomputed(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        run_replications("limewire", seeds=(1,), config=tiny_config(),
                         profile=TINY_PROFILE, checkpoint=journal)
        entries = [json.loads(line) for line in
                   journal.read_text().splitlines()]
        assert entries[0]["kind"] == "header"
        assert [e["seed"] for e in entries[1:]] == [1]
        # poison the recorded metrics: if the resume recomputed seed 1
        # the report would disagree with the journal
        entries[1]["metrics"] = {name: 0.123 for name
                                 in entries[1]["metrics"]}
        journal.write_text("\n".join(json.dumps(e) for e in entries) + "\n")
        report = run_replications("limewire", seeds=(1,),
                                  config=tiny_config(),
                                  profile=TINY_PROFILE, checkpoint=journal)
        assert all(summary.values == (0.123,)
                   for summary in report.metrics.values())

    def test_config_change_invalidates_checkpoint(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        run_replications("limewire", seeds=(1,), config=tiny_config(),
                         profile=TINY_PROFILE, checkpoint=journal)
        with pytest.raises(ValueError, match="different experiment"):
            run_replications(
                "limewire", seeds=(1,),
                config=CampaignConfig(seed=0, duration_days=0.1),
                profile=TINY_PROFILE, checkpoint=journal)

    def test_non_checkpoint_file_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"kind": "something-else"}\n')
        with pytest.raises(ValueError, match="not a replication"):
            run_replications("limewire", seeds=(1,), config=tiny_config(),
                             profile=TINY_PROFILE, checkpoint=bogus)
