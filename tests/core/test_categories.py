"""Tests for the query-category extension analysis."""

from repro.core.analysis.categories import (category_breakdown,
                                            categorize_queries)


class TestCategorize:
    def test_every_query_mapped(self, limewire_campaign):
        store = limewire_campaign.store
        catalog = limewire_campaign.world.catalog
        mapping = categorize_queries(store, catalog)
        queries = {record.query for record in store}
        assert set(mapping) == queries

    def test_evergreen_recognized(self, limewire_campaign):
        mapping = categorize_queries(limewire_campaign.store,
                                     limewire_campaign.world.catalog)
        evergreen = [query for query, category in mapping.items()
                     if category == "evergreen"]
        assert evergreen  # the workload includes the bait strings

    def test_media_categories_present(self, limewire_campaign):
        mapping = categorize_queries(limewire_campaign.store,
                                     limewire_campaign.world.catalog)
        assert "audio" in set(mapping.values())


class TestBreakdown:
    def test_totals_match_store(self, limewire_campaign):
        rows = category_breakdown(limewire_campaign.store,
                                  limewire_campaign.world.catalog)
        assert sum(row.responses for row in rows) == len(
            limewire_campaign.store)
        assert sum(row.malicious for row in rows) == len(
            limewire_campaign.store.malicious_responses())

    def test_media_queries_attract_nearly_pure_malware(self,
                                                       limewire_campaign):
        """The paper's mechanism: an archive/exe response to a *music*
        query can only be an echo worm, so that category's malicious
        share is ~100%."""
        rows = category_breakdown(limewire_campaign.store,
                                  limewire_campaign.world.catalog)
        audio = next(row for row in rows if row.category == "audio")
        assert audio.downloadable > 50
        assert audio.malicious_share > 0.95

    def test_software_queries_mixed(self, limewire_campaign):
        rows = category_breakdown(limewire_campaign.store,
                                  limewire_campaign.world.catalog)
        software = [row for row in rows
                    if row.category in ("archive", "executable")]
        assert software
        for row in software:
            assert row.malicious_share < 0.9  # clean results exist here
