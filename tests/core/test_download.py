"""Tests for the downloader, including retry/outcome accounting."""

import pytest

from repro.core.measure.download import Downloader, DownloadPolicy
from repro.faults.injectors import FetchIntervention
from repro.files.payload import Blob
from repro.malware.corpus import limewire_strains
from repro.malware.infection import strain_body_blob
from repro.scanner.database import database_for_strains
from repro.scanner.engine import ScanEngine
from repro.telemetry.registry import MetricRegistry
from repro.telemetry.spans import SpanTracer

from .conftest import make_record


@pytest.fixture()
def engine():
    return ScanEngine(database_for_strains(limewire_strains()))


class _ScriptedFaults:
    """FetchFaults stand-in replaying a fixed intervention sequence."""

    def __init__(self, *interventions):
        self._interventions = list(interventions)
        self.calls = 0

    def on_fetch(self, record, attempt):
        self.calls += 1
        if self._interventions:
            return self._interventions.pop(0)
        return None


def _outcome_count(registry, outcome):
    counter = registry.get("downloader_attempts_total")
    return counter.labels(outcome).value if counter is not None else 0


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            DownloadPolicy(delay_min_s=-1.0)
        with pytest.raises(ValueError):
            DownloadPolicy(delay_min_s=10.0, delay_max_s=1.0)
        with pytest.raises(ValueError):
            DownloadPolicy(retries=-1)
        with pytest.raises(ValueError):
            DownloadPolicy(attempt_timeout_s=0.0)
        with pytest.raises(ValueError):
            DownloadPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            DownloadPolicy(retry_gap_s=100.0, max_retry_gap_s=50.0)

    def test_retry_gap_backoff_and_cap(self):
        policy = DownloadPolicy(retry_gap_s=100.0, backoff_factor=2.0,
                                max_retry_gap_s=300.0)
        assert policy.retry_gap(0) == 100.0
        assert policy.retry_gap(1) == 200.0
        assert policy.retry_gap(2) == 300.0  # capped, not 400
        # the default factor of 1.0 reproduces the flat historical gap
        flat = DownloadPolicy()
        assert flat.retry_gap(0) == flat.retry_gap_s
        assert flat.retry_gap(5) == flat.retry_gap_s


class TestDownloader:
    def test_successful_download_and_clean_scan(self, sim, engine):
        downloader = Downloader(sim, engine)
        blob = Blob(content_key="clean", extension="exe", size=1000)
        record = make_record(downloaded=False,
                             content_id=blob.sha1_urn())
        record.download_attempted = False
        downloader.enqueue(record, lambda: blob)
        sim.run_until(300.0)
        assert record.download_attempted
        assert record.downloaded
        assert record.download_outcome == "success"
        assert record.malware_name is None

    def test_malware_scan_annotates(self, sim, engine):
        downloader = Downloader(sim, engine)
        strain = limewire_strains()[0]
        blob = strain_body_blob(strain)
        record = make_record(downloaded=False,
                             content_id=blob.sha1_urn())
        downloader.enqueue(record, lambda: blob)
        sim.run_until(300.0)
        assert record.malware_name == strain.av_name

    def test_failed_fetch_leaves_undownloaded(self, sim, engine):
        downloader = Downloader(sim, engine,
                                DownloadPolicy(retries=0))
        record = make_record(downloaded=False)
        downloader.enqueue(record, lambda: None)
        sim.run_until(10_000.0)
        assert record.download_attempted
        assert not record.downloaded
        assert record.download_outcome == "offline"

    def test_retry_succeeds_later(self, sim, engine):
        downloader = Downloader(
            sim, engine, DownloadPolicy(retries=1, retry_gap_s=100.0))
        attempts = []
        blob = Blob(content_key="x", extension="exe", size=1)

        def flaky_fetch():
            attempts.append(sim.now)
            return blob if len(attempts) > 1 else None

        record = make_record(downloaded=False,
                             content_id=blob.sha1_urn())
        downloader.enqueue(record, flaky_fetch)
        sim.run_until(10_000.0)
        assert len(attempts) == 2
        assert record.downloaded
        assert record.download_outcome == "success"

    def test_retries_bounded(self, sim, engine):
        downloader = Downloader(
            sim, engine, DownloadPolicy(retries=2, retry_gap_s=10.0))
        attempts = []

        def always_fail():
            attempts.append(sim.now)
            return None

        downloader.enqueue(make_record(downloaded=False), always_fail)
        sim.run_until(10_000.0)
        assert len(attempts) == 3  # initial + 2 retries

    def test_backoff_spaces_retries(self, sim, engine):
        downloader = Downloader(
            sim, engine,
            DownloadPolicy(delay_min_s=0.0, delay_max_s=0.0, retries=3,
                           retry_gap_s=100.0, backoff_factor=2.0,
                           max_retry_gap_s=300.0))
        attempts = []

        def always_fail():
            attempts.append(sim.now)
            return None

        downloader.enqueue(make_record(downloaded=False), always_fail)
        sim.run_until(10_000.0)
        gaps = [later - earlier
                for earlier, later in zip(attempts, attempts[1:])]
        assert gaps == [100.0, 200.0, 300.0]  # doubled, then capped

    def test_verdict_cache_scans_once_per_content(self, sim, engine):
        downloader = Downloader(sim, engine)
        blob = Blob(content_key="same", extension="exe", size=1)
        for _ in range(5):
            record = make_record(downloaded=False, content_id="u:same")
            downloader.enqueue(record, lambda: blob)
        sim.run_until(1_000.0)
        assert engine.scans_performed == 1
        assert downloader.successes == 5

    def test_delay_is_applied(self, sim, engine):
        downloader = Downloader(
            sim, engine, DownloadPolicy(delay_min_s=50.0, delay_max_s=60.0))
        fetched_at = []
        blob = Blob(content_key="t", extension="exe", size=1)

        def fetch():
            fetched_at.append(sim.now)
            return blob

        downloader.enqueue(make_record(downloaded=False, content_id="u:t"),
                           fetch)
        sim.run_until(1_000.0)
        assert 50.0 <= fetched_at[0] <= 60.0


class TestIntegrityVerification:
    def test_md5_content_id_accepted(self, sim, engine):
        downloader = Downloader(sim, engine, DownloadPolicy(retries=0))
        blob = Blob(content_key="ft", extension="exe", size=640)
        record = make_record(network="openft", downloaded=False,
                             content_id=blob.md5_hex())
        downloader.enqueue(record, lambda: blob)
        sim.run_until(1_000.0)
        assert record.downloaded

    def test_unknown_scheme_skips_verification(self, sim, engine):
        downloader = Downloader(sim, engine, DownloadPolicy(retries=0))
        blob = Blob(content_key="any", extension="exe", size=10)
        record = make_record(downloaded=False, content_id="u:opaque")
        downloader.enqueue(record, lambda: blob)
        sim.run_until(1_000.0)
        assert record.downloaded

    def test_hash_mismatch_never_scanned(self, sim, engine):
        downloader = Downloader(sim, engine, DownloadPolicy(retries=0))
        advertised = Blob(content_key="real", extension="exe", size=1000)
        served = Blob(content_key="swapped", extension="exe", size=1000)
        record = make_record(downloaded=False, size=1000,
                             content_id=advertised.sha1_urn())
        downloader.enqueue(record, lambda: served)
        sim.run_until(1_000.0)
        assert not record.downloaded
        assert record.download_outcome == "corrupt"
        assert record.malware_name is None
        assert engine.scans_performed == 0  # bad bytes never reach the AV

    def test_short_mismatch_reads_as_truncated(self, sim, engine):
        downloader = Downloader(sim, engine, DownloadPolicy(retries=0))
        advertised = Blob(content_key="real", extension="exe", size=1000)
        served = Blob(content_key="real#cut", extension="exe", size=300)
        record = make_record(downloaded=False, size=1000,
                             content_id=advertised.sha1_urn())
        downloader.enqueue(record, lambda: served)
        sim.run_until(1_000.0)
        assert record.download_outcome == "truncated"


class TestFaultedAttempts:
    def test_tampered_blob_labelled_corrupt(self, sim, engine):
        faults = _ScriptedFaults(FetchIntervention(tamper="corrupt"))
        downloader = Downloader(sim, engine, DownloadPolicy(retries=0),
                                faults=faults)
        blob = Blob(content_key="ok", extension="exe", size=1000)
        record = make_record(downloaded=False, size=1000,
                             content_id=blob.sha1_urn())
        downloader.enqueue(record, lambda: blob)
        sim.run_until(1_000.0)
        assert record.download_outcome == "corrupt"
        assert not record.downloaded

    def test_truncated_blob_labelled_truncated(self, sim, engine):
        faults = _ScriptedFaults(FetchIntervention(tamper="truncate"))
        downloader = Downloader(sim, engine, DownloadPolicy(retries=0),
                                faults=faults)
        blob = Blob(content_key="ok", extension="exe", size=1000)
        record = make_record(downloaded=False, size=1000,
                             content_id=blob.sha1_urn())
        downloader.enqueue(record, lambda: blob)
        sim.run_until(1_000.0)
        assert record.download_outcome == "truncated"

    def test_stall_past_timeout_is_timeout(self, sim, engine):
        faults = _ScriptedFaults(FetchIntervention(stall_s=5_000.0))
        downloader = Downloader(
            sim, engine,
            DownloadPolicy(delay_min_s=0.0, delay_max_s=0.0, retries=0,
                           attempt_timeout_s=600.0),
            faults=faults)
        fetches = []
        record = make_record(downloaded=False)
        downloader.enqueue(record, lambda: fetches.append(1))
        sim.run_until(10_000.0)
        assert record.download_outcome == "timeout"
        assert fetches == []  # the bytes never arrived

    def test_survivable_stall_delays_success(self, sim, engine):
        faults = _ScriptedFaults(FetchIntervention(stall_s=50.0))
        downloader = Downloader(
            sim, engine,
            DownloadPolicy(delay_min_s=0.0, delay_max_s=0.0, retries=0),
            faults=faults)
        blob = Blob(content_key="slow", extension="exe", size=10)
        fetched_at = []

        def fetch():
            fetched_at.append(sim.now)
            return blob

        record = make_record(downloaded=False,
                             content_id=blob.sha1_urn())
        downloader.enqueue(record, fetch)
        sim.run_until(1_000.0)
        assert record.downloaded
        assert fetched_at == [50.0]

    def test_tamper_retry_then_clean_success(self, sim, engine):
        faults = _ScriptedFaults(FetchIntervention(tamper="corrupt"))
        downloader = Downloader(
            sim, engine, DownloadPolicy(retries=1, retry_gap_s=100.0),
            faults=faults)
        blob = Blob(content_key="flaky", extension="exe", size=10)
        record = make_record(downloaded=False,
                             content_id=blob.sha1_urn())
        downloader.enqueue(record, lambda: blob)
        sim.run_until(10_000.0)
        assert record.downloaded
        assert record.download_outcome == "success"
        assert faults.calls == 2


class TestRetryAccounting:
    def test_retry_then_success_counters(self, sim, engine):
        registry = MetricRegistry()
        downloader = Downloader(
            sim, engine, DownloadPolicy(retries=1, retry_gap_s=100.0),
            registry=registry)
        blob = Blob(content_key="x", extension="exe", size=1)
        state = {"calls": 0}

        def flaky_fetch():
            state["calls"] += 1
            return blob if state["calls"] > 1 else None

        record = make_record(downloaded=False,
                             content_id=blob.sha1_urn())
        downloader.enqueue(record, flaky_fetch)
        sim.run_until(10_000.0)
        assert downloader.attempts == 2
        assert downloader.successes == 1
        assert _outcome_count(registry, "retry") == 1
        assert _outcome_count(registry, "success") == 1
        assert registry.get("downloader_in_flight").value == 0

    def test_retry_then_offline_counters(self, sim, engine):
        registry = MetricRegistry()
        downloader = Downloader(
            sim, engine, DownloadPolicy(retries=2, retry_gap_s=10.0),
            registry=registry)
        downloader.enqueue(make_record(downloaded=False), lambda: None,)
        sim.run_until(10_000.0)
        assert _outcome_count(registry, "retry") == 2
        assert _outcome_count(registry, "offline") == 1
        assert registry.get("downloader_in_flight").value == 0

    def test_faulted_outcomes_counted_and_drained(self, sim, engine):
        registry = MetricRegistry()
        faults = _ScriptedFaults(FetchIntervention(tamper="corrupt"),
                                 FetchIntervention(tamper="truncate"),
                                 FetchIntervention(stall_s=9_999.0))
        downloader = Downloader(
            sim, engine,
            DownloadPolicy(delay_min_s=0.0, delay_max_s=0.0, retries=0,
                           attempt_timeout_s=600.0),
            registry=registry, faults=faults)
        blob = Blob(content_key="y", extension="exe", size=100)
        for _ in range(3):
            record = make_record(downloaded=False, size=100,
                                 content_id=blob.sha1_urn())
            downloader.enqueue(record, lambda: blob)
        sim.run_until(50_000.0)
        assert _outcome_count(registry, "corrupt") == 1
        assert _outcome_count(registry, "truncated") == 1
        assert _outcome_count(registry, "timeout") == 1
        assert registry.get("downloader_in_flight").value == 0

    def test_span_outcomes_across_retry(self, sim, engine):
        tracer = SpanTracer()
        downloader = Downloader(
            sim, engine, DownloadPolicy(retries=1, retry_gap_s=100.0),
            tracer=tracer)
        blob = Blob(content_key="s", extension="exe", size=1)
        state = {"calls": 0}

        def flaky_fetch():
            state["calls"] += 1
            return blob if state["calls"] > 1 else None

        ok = make_record(downloaded=False, content_id=blob.sha1_urn())
        downloader.enqueue(ok, flaky_fetch)
        gone = make_record(downloaded=False)
        downloader.enqueue(gone, lambda: None)
        sim.run_until(50_000.0)
        outcomes = sorted(span.attributes["outcome"]
                          for span in tracer.spans("download"))
        assert outcomes == ["offline", "success"]
        for span in tracer.spans("download"):
            assert span.finished
