"""Tests for the downloader."""

import pytest

from repro.core.measure.download import Downloader, DownloadPolicy
from repro.files.payload import Blob
from repro.malware.corpus import limewire_strains
from repro.malware.infection import strain_body_blob
from repro.scanner.database import database_for_strains
from repro.scanner.engine import ScanEngine

from .conftest import make_record


@pytest.fixture()
def engine():
    return ScanEngine(database_for_strains(limewire_strains()))


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            DownloadPolicy(delay_min_s=-1.0)
        with pytest.raises(ValueError):
            DownloadPolicy(delay_min_s=10.0, delay_max_s=1.0)
        with pytest.raises(ValueError):
            DownloadPolicy(retries=-1)


class TestDownloader:
    def test_successful_download_and_clean_scan(self, sim, engine):
        downloader = Downloader(sim, engine)
        record = make_record(downloaded=False)
        record.download_attempted = False
        blob = Blob(content_key="clean", extension="exe", size=1000)
        downloader.enqueue(record, lambda: blob)
        sim.run_until(300.0)
        assert record.download_attempted
        assert record.downloaded
        assert record.malware_name is None

    def test_malware_scan_annotates(self, sim, engine):
        downloader = Downloader(sim, engine)
        strain = limewire_strains()[0]
        record = make_record(downloaded=False)
        downloader.enqueue(record, lambda: strain_body_blob(strain))
        sim.run_until(300.0)
        assert record.malware_name == strain.av_name

    def test_failed_fetch_leaves_undownloaded(self, sim, engine):
        downloader = Downloader(sim, engine,
                                DownloadPolicy(retries=0))
        record = make_record(downloaded=False)
        downloader.enqueue(record, lambda: None)
        sim.run_until(10_000.0)
        assert record.download_attempted
        assert not record.downloaded

    def test_retry_succeeds_later(self, sim, engine):
        downloader = Downloader(
            sim, engine, DownloadPolicy(retries=1, retry_gap_s=100.0))
        attempts = []
        blob = Blob(content_key="x", extension="exe", size=1)

        def flaky_fetch():
            attempts.append(sim.now)
            return blob if len(attempts) > 1 else None

        record = make_record(downloaded=False)
        downloader.enqueue(record, flaky_fetch)
        sim.run_until(10_000.0)
        assert len(attempts) == 2
        assert record.downloaded

    def test_retries_bounded(self, sim, engine):
        downloader = Downloader(
            sim, engine, DownloadPolicy(retries=2, retry_gap_s=10.0))
        attempts = []

        def always_fail():
            attempts.append(sim.now)
            return None

        downloader.enqueue(make_record(downloaded=False), always_fail)
        sim.run_until(10_000.0)
        assert len(attempts) == 3  # initial + 2 retries

    def test_verdict_cache_scans_once_per_content(self, sim, engine):
        downloader = Downloader(sim, engine)
        blob = Blob(content_key="same", extension="exe", size=1)
        for _ in range(5):
            record = make_record(downloaded=False, content_id="u:same")
            downloader.enqueue(record, lambda: blob)
        sim.run_until(1_000.0)
        assert engine.scans_performed == 1
        assert downloader.successes == 5

    def test_delay_is_applied(self, sim, engine):
        downloader = Downloader(
            sim, engine, DownloadPolicy(delay_min_s=50.0, delay_max_s=60.0))
        fetched_at = []
        blob = Blob(content_key="t", extension="exe", size=1)

        def fetch():
            fetched_at.append(sim.now)
            return blob

        downloader.enqueue(make_record(downloaded=False), fetch)
        sim.run_until(1_000.0)
        assert 50.0 <= fetched_at[0] <= 60.0
