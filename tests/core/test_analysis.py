"""Exact-value tests for the analysis layer on a hand-built store."""

import pytest

from repro.core.analysis.concentration import (rank_cdf, top_malware,
                                               top_n_share)
from repro.core.analysis.prevalence import compute_prevalence
from repro.core.analysis.sizes import distinct_size_counts, size_dictionary
from repro.core.analysis.sources import (address_breakdown, host_cdf,
                                         host_concentration, top_host_share)
from repro.core.analysis.summary import summarize_collection
from repro.core.analysis.timeseries import daily_series
from repro.files.types import FileType


class TestSummary:
    def test_exact_counts(self, synthetic_store):
        summary = summarize_collection(synthetic_store, duration_days=2.0)
        assert summary.queries_issued == 2
        assert summary.responses == 12
        assert summary.downloadable_type_responses == 11
        assert summary.downloaded_responses == 10
        assert summary.malicious_responses == 6
        assert summary.unique_hosts == 8
        assert summary.responses_per_query == 6.0
        assert summary.download_success_rate == pytest.approx(10 / 11)


class TestPrevalence:
    def test_headline_fraction(self, synthetic_store):
        report = compute_prevalence(synthetic_store)
        assert report.downloadable == 10
        assert report.malicious == 6
        assert report.fraction == pytest.approx(0.6)

    def test_by_type_split(self, synthetic_store):
        report = compute_prevalence(synthetic_store)
        exe_downloadable, exe_malicious = report.by_type["executable"]
        assert (exe_downloadable, exe_malicious) == (6, 4)
        zip_downloadable, zip_malicious = report.by_type["archive"]
        assert (zip_downloadable, zip_malicious) == (4, 2)
        assert report.type_fraction(FileType.EXECUTABLE) == pytest.approx(
            4 / 6)

    def test_empty_store(self):
        from repro.core.measure.store import MeasurementStore
        report = compute_prevalence(MeasurementStore("limewire"))
        assert report.fraction == 0.0


class TestConcentration:
    def test_ranking(self, synthetic_store):
        rows = top_malware(synthetic_store)
        assert [row.name for row in rows] == ["WormA", "WormB"]
        assert rows[0].responses == 4
        assert rows[0].share == pytest.approx(4 / 6)
        assert rows[1].cumulative_share == pytest.approx(1.0)

    def test_top_n_share(self, synthetic_store):
        assert top_n_share(synthetic_store, 1) == pytest.approx(4 / 6)
        assert top_n_share(synthetic_store, 2) == pytest.approx(1.0)
        assert top_n_share(synthetic_store, 10) == pytest.approx(1.0)

    def test_top_n_share_invalid(self, synthetic_store):
        with pytest.raises(ValueError):
            top_n_share(synthetic_store, 0)

    def test_rank_cdf(self, synthetic_store):
        cdf = rank_cdf(synthetic_store)
        assert cdf == pytest.approx([4 / 6, 1.0])


class TestSources:
    def test_address_breakdown(self, synthetic_store):
        breakdown = address_breakdown(synthetic_store)
        assert breakdown.counts == {"public": 5, "private": 1}
        assert breakdown.fraction("private") == pytest.approx(1 / 6)

    def test_host_concentration_all(self, synthetic_store):
        rows = host_concentration(synthetic_store)
        assert rows[0].responses == 2  # both 1.1.1.1 and 3.3.3.3 have 2
        assert {row.responder_host for row in rows[:2]} == {
            "1.1.1.1", "3.3.3.3"}

    def test_host_concentration_per_strain(self, synthetic_store):
        rows = host_concentration(synthetic_store, "WormB")
        assert len(rows) == 1
        assert rows[0].responder_host == "3.3.3.3"
        assert rows[0].share == pytest.approx(1.0)

    def test_top_host_share(self, synthetic_store):
        assert top_host_share(synthetic_store, "WormB") == pytest.approx(1.0)
        assert top_host_share(synthetic_store) == pytest.approx(2 / 6)

    def test_host_cdf_ends_at_one(self, synthetic_store):
        cdf = host_cdf(synthetic_store)
        assert cdf[-1] == pytest.approx(1.0)
        assert cdf == sorted(cdf)

    def test_empty(self):
        from repro.core.measure.store import MeasurementStore
        store = MeasurementStore("limewire")
        assert top_host_share(store) == 0.0
        assert host_cdf(store) == []


class TestSizes:
    def test_size_dictionary(self, synthetic_store):
        profiles = size_dictionary(synthetic_store, top_n=2, coverage=0.95)
        assert profiles[0].name == "WormA"
        assert profiles[0].common_sizes == (1000,)
        assert profiles[0].distinct_sizes == 1
        assert profiles[1].name == "WormB"
        assert set(profiles[1].common_sizes) == {2000, 2001}

    def test_coverage_cuts_tail(self, synthetic_store):
        profiles = size_dictionary(synthetic_store, top_n=2, coverage=0.5)
        assert len(profiles[1].common_sizes) == 1  # one of two sizes covers 50%

    def test_coverage_validation(self, synthetic_store):
        with pytest.raises(ValueError):
            size_dictionary(synthetic_store, coverage=0.0)

    def test_distinct_size_counts(self, synthetic_store):
        counts = distinct_size_counts(synthetic_store)
        assert counts == {"WormA": 1, "WormB": 2}

    def test_profile_coverage_helper(self, synthetic_store):
        profiles = size_dictionary(synthetic_store, top_n=1)
        assert profiles[0].coverage((1000,)) == pytest.approx(1.0)
        assert profiles[0].coverage((9,)) == 0.0


class TestTimeseries:
    def test_daily_points(self, synthetic_store):
        points = daily_series(synthetic_store)
        assert len(points) == 2
        day0, day1 = points
        assert day0.responses == 10
        assert day0.downloadable == 8
        assert day0.malicious == 5
        assert day1.malicious == 1
        assert day1.malicious_share == pytest.approx(1 / 2)

    def test_empty_store(self):
        from repro.core.measure.store import MeasurementStore
        assert daily_series(MeasurementStore("limewire")) == []
