"""Tests for the vendor census extension."""

import pytest

from repro.core.analysis.vendors import vendor_census
from repro.core.measure.store import MeasurementStore

from .conftest import make_record


class TestSynthetic:
    def test_counts_and_shares(self):
        store = MeasurementStore("limewire")
        store.add(make_record(vendor="LIME", malware="X"))
        store.add(make_record(vendor="LIME"))
        store.add(make_record(vendor="BEAR"))
        rows = {row.vendor: row for row in vendor_census(store)}
        assert rows["LIME"].responses == 2
        assert rows["LIME"].response_share == pytest.approx(2 / 3)
        assert rows["LIME"].malicious == 1
        assert rows["LIME"].malicious_share == pytest.approx(1.0)
        assert rows["BEAR"].malicious == 0

    def test_missing_vendor_bucketed(self):
        store = MeasurementStore("limewire")
        store.add(make_record(vendor=""))
        rows = vendor_census(store)
        assert rows[0].vendor == "????"


def make_record(**overrides):  # shadow helper adding vendor kwarg
    from .conftest import make_record as base_make_record
    vendor = overrides.pop("vendor", "")
    record = base_make_record(**overrides)
    record.vendor = vendor
    return record


class TestOnCampaign:
    def test_population_mix_visible(self, limewire_campaign):
        rows = vendor_census(limewire_campaign.store)
        vendors = {row.vendor for row in rows}
        assert "LIME" in vendors
        assert len(vendors) >= 3  # BearShare/Shareaza/Gnucleus appear

    def test_infection_not_brand_specific(self, limewire_campaign):
        """Malicious share per vendor roughly tracks response share."""
        rows = vendor_census(limewire_campaign.store)
        for row in rows:
            if row.responses < 200:
                continue
            assert row.malicious_share == pytest.approx(
                row.response_share, abs=0.25)
