"""Tests for the filter deployment extension."""

import pytest

from repro.core.filtering.deployment import (DeploymentReport,
                                             simulate_deployment)
from repro.core.filtering.sizefilter import SizeBasedFilter


class TestSimulateDeployment:
    def test_exact_numbers_on_synthetic(self, synthetic_store):
        size_filter = SizeBasedFilter.learn(synthetic_store, top_n=2)
        report = simulate_deployment(size_filter, synthetic_store)
        assert report.malicious_before == 6
        assert report.malicious_after == 0
        assert report.clean_before == 4
        assert report.clean_after == 3  # one clean zip shares a worm size
        assert report.exposure_reduction == pytest.approx(1.0)
        assert report.collateral_loss == pytest.approx(0.25)

    def test_residual_risk(self, synthetic_store):
        size_filter = SizeBasedFilter.learn(synthetic_store, top_n=1)
        report = simulate_deployment(size_filter, synthetic_store)
        # WormA blocked (4), WormB survives (2); clean survive (4)
        assert report.residual_risk_before == pytest.approx(0.6)
        assert report.residual_risk_after == pytest.approx(2 / 6)

    def test_on_real_campaign(self, limewire_campaign):
        size_filter = SizeBasedFilter.learn(limewire_campaign.store)
        report = simulate_deployment(size_filter, limewire_campaign.store)
        assert report.exposure_reduction >= 0.99
        assert report.collateral_loss <= 0.01
        # before: users download malware 2 of 3 times; after: almost never
        assert report.residual_risk_before > 0.5
        assert report.residual_risk_after < 0.05

    def test_empty_report_properties(self):
        report = DeploymentReport(filter_name="f", network="limewire",
                                  malicious_before=0, malicious_after=0,
                                  clean_before=0, clean_after=0)
        assert report.exposure_reduction == 0.0
        assert report.collateral_loss == 0.0
        assert report.residual_risk_before == 0.0
        assert report.residual_risk_after == 0.0
