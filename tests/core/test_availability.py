"""Tests for the availability extension analysis."""

from repro.core.analysis.availability import availability_breakdown
from repro.core.measure.store import MeasurementStore

from .conftest import make_record


class TestSynthetic:
    def test_exact_split(self):
        store = MeasurementStore("limewire")
        natted = make_record(host="192.168.1.4", downloaded=False)
        public_ok = make_record(host="9.9.9.9", downloaded=True)
        public_fail = make_record(host="9.9.9.8", downloaded=False)
        store.extend([natted, public_ok, public_fail])
        rows = {row.responder_class: row
                for row in availability_breakdown(store)}
        assert rows["natted"].responses == 1
        assert rows["natted"].downloaded == 0
        assert rows["public"].responses == 2
        assert rows["public"].downloaded == 1
        assert rows["public"].success_rate == 0.5

    def test_push_flag_classifies_public_address(self):
        store = MeasurementStore("limewire")
        record = make_record(host="9.9.9.9")
        record.push_needed = True
        store.add(record)
        rows = {row.responder_class: row
                for row in availability_breakdown(store)}
        assert rows["natted"].responses == 1


class TestOnCampaign:
    def test_totals_match(self, limewire_campaign):
        rows = availability_breakdown(limewire_campaign.store)
        assert sum(row.responses for row in rows) == len(
            limewire_campaign.store)

    def test_both_classes_mostly_downloadable(self, limewire_campaign):
        rows = {row.responder_class: row
                for row in availability_breakdown(limewire_campaign.store)}
        # PUSH through server-like ultrapeers succeeds most of the time,
        # so NATed hosts are downloadable too -- just a bit less reliably
        assert rows["natted"].success_rate > 0.7
        assert rows["public"].success_rate > 0.9
        assert (rows["public"].success_rate
                >= rows["natted"].success_rate - 0.02)
