"""Tests for CSV export."""

import csv

import pytest

from repro.core.export import EXPORTERS, export_all


def read_csv(path):
    with path.open() as handle:
        return list(csv.reader(handle))


class TestExportAll:
    def test_writes_every_experiment(self, synthetic_store, tmp_path):
        written = export_all(synthetic_store, tmp_path)
        assert set(written) == set(EXPORTERS)
        for path in written.values():
            assert path.exists()
            rows = read_csv(path)
            assert len(rows) >= 1  # at least the header

    def test_t2_contents(self, synthetic_store, tmp_path):
        written = export_all(synthetic_store, tmp_path)
        rows = read_csv(written["t2"])
        header, data = rows[0], rows[1:]
        assert header == ["network", "type", "downloadable", "malicious",
                          "prevalence"]
        all_row = next(row for row in data if row[1] == "all")
        assert all_row[2] == "10"
        assert all_row[3] == "6"
        assert float(all_row[4]) == pytest.approx(0.6)

    def test_t3_contents(self, synthetic_store, tmp_path):
        written = export_all(synthetic_store, tmp_path)
        rows = read_csv(written["t3"])
        assert rows[1][1] == "WormA"
        assert rows[1][2] == "4"

    def test_f1_monotone(self, synthetic_store, tmp_path):
        written = export_all(synthetic_store, tmp_path)
        rows = read_csv(written["f1"])[1:]
        values = [float(row[1]) for row in rows]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_f3_days(self, synthetic_store, tmp_path):
        written = export_all(synthetic_store, tmp_path)
        rows = read_csv(written["f3"])[1:]
        assert [row[0] for row in rows] == ["0", "1"]

    def test_t6_dictionary_flags(self, synthetic_store, tmp_path):
        written = export_all(synthetic_store, tmp_path)
        rows = read_csv(written["t6"])[1:]
        by_strain_size = {(row[0], row[1]): row[3] for row in rows}
        assert by_strain_size[("WormA", "1000")] == "True"

    def test_directory_created(self, synthetic_store, tmp_path):
        target = tmp_path / "deep" / "nested"
        written = export_all(synthetic_store, target)
        assert all(path.parent == target for path in written.values())
