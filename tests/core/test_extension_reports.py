"""Tests for the extension renderers (X1-X4)."""

from repro.core import reports


class TestExtensionRenderers:
    def test_x1_sample_census(self, synthetic_store):
        text = reports.render_x1_sample_census(synthetic_store)
        assert "X1" in text
        assert "WormA" in text
        assert "3 distinct samples" in text

    def test_x2_availability(self, synthetic_store):
        text = reports.render_x2_availability(synthetic_store)
        assert "X2" in text
        assert "natted" in text
        assert "public" in text

    def test_x3_vendors(self, synthetic_store):
        text = reports.render_x3_vendors(synthetic_store)
        assert "X3" in text
        assert "????" in text  # synthetic records carry no vendor

    def test_x4_deployment(self, synthetic_store):
        text = reports.render_x4_deployment(synthetic_store)
        assert "X4" in text
        assert "exposure reduction" in text
        assert "residual risk" in text

    def test_cli_analyze_includes_extensions(self, synthetic_store,
                                             tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "store.jsonl"
        synthetic_store.save(path)
        assert main(["analyze", str(path), "--table", "x1"]) == 0
        assert "X1" in capsys.readouterr().out
        assert main(["analyze", str(path)]) == 0
        output = capsys.readouterr().out
        for marker in ("X1", "X2", "X3", "X4"):
            assert marker in output
