"""Tests for response records."""

from repro.core.measure.records import ResponseRecord

from .conftest import make_record


class TestDerivedFields:
    def test_extension(self):
        assert make_record(filename="a_b.EXE").extension == "exe"
        assert make_record(filename="noext").extension == ""

    def test_file_type(self):
        assert make_record(filename="x.zip").file_type == "archive"
        assert make_record(filename="x.mp3").file_type == "audio"

    def test_counts_as_downloadable_type(self):
        assert make_record(filename="x.exe").counts_as_downloadable_type
        assert make_record(filename="x.rar").counts_as_downloadable_type
        assert not make_record(filename="x.avi").counts_as_downloadable_type

    def test_is_malicious(self):
        assert make_record(malware="W32.X").is_malicious
        assert not make_record().is_malicious

    def test_day(self):
        assert make_record(time=10.0).day == 0
        assert make_record(time=86_400.0).day == 1
        assert make_record(time=200_000.0).day == 2


class TestPersistence:
    def test_json_roundtrip(self):
        record = make_record(malware="W32.X", filename="café.exe")
        restored = ResponseRecord.from_json(record.to_json())
        assert restored == record

    def test_json_roundtrip_defaults(self):
        record = make_record(downloaded=False)
        record.download_attempted = False
        restored = ResponseRecord.from_json(record.to_json())
        assert restored == record
        assert not restored.downloaded
