"""Tests for the parallel replication fan-out."""

import pytest

from repro.core.experiments import replicate_one, run_replications
from repro.core.measure.campaign import CampaignConfig
from repro.core.parallel import parallel_map, resolve_workers
from repro.peers.profiles import GnutellaProfile


def _square(value):
    return value * value


class TestResolveWorkers:
    def test_explicit_count_capped_by_tasks(self):
        assert resolve_workers(8, 3) == 3
        assert resolve_workers(2, 10) == 2

    def test_none_means_cpu_count(self):
        assert resolve_workers(None, 1000) >= 1

    def test_floor_of_one(self):
        assert resolve_workers(0, 5) == 1
        assert resolve_workers(-3, 5) == 1


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_parallel_preserves_input_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=4) == [
            i * i for i in items]

    def test_empty_items(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [5], workers=4) == [25]

    def test_falls_back_when_pool_unavailable(self, monkeypatch):
        def broken_executor(*args, **kwargs):
            raise OSError("no fork for you")

        import concurrent.futures
        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                            broken_executor)
        assert parallel_map(_square, [1, 2, 3], workers=4) == [1, 4, 9]

    def test_worker_exceptions_propagate(self):
        def boom(value):
            raise RuntimeError("bad seed")

        with pytest.raises(RuntimeError):
            parallel_map(boom, [1, 2], workers=1)


class TestParallelReplications:
    @pytest.fixture(scope="class")
    def setup(self):
        return (CampaignConfig(seed=0, duration_days=0.1),
                GnutellaProfile().scaled(0.4))

    def test_parallel_matches_serial_bit_identical(self, setup):
        config, profile = setup
        seeds = (3, 4)
        serial = run_replications("limewire", seeds, config,
                                  profile=profile, workers=1)
        parallel = run_replications("limewire", seeds, config,
                                    profile=profile, workers=2)
        assert serial.seeds == parallel.seeds
        assert set(serial.metrics) == set(parallel.metrics)
        for name in serial.metrics:
            # bit-identical floats, not approx: same seed, same world
            assert serial.metrics[name].values == \
                parallel.metrics[name].values

    def test_replicate_one_matches_serial_runner(self, setup):
        config, profile = setup
        serial = run_replications("limewire", (3,), config,
                                  profile=profile, workers=1)
        single = replicate_one("limewire", config, profile, 3)
        for name, summary in serial.metrics.items():
            assert summary.values == (single[name],)

    def test_replicate_one_unknown_network(self, setup):
        config, profile = setup
        with pytest.raises(ValueError):
            replicate_one("kazaa", config, profile, 1)
