"""Tests for the latency analysis."""

import pytest

from repro.core.analysis.latency import latency_summary
from repro.core.measure.store import MeasurementStore

from .conftest import make_record


class TestLatencyField:
    def test_latency_property(self):
        record = make_record(time=105.0)
        record.query_time = 100.0
        assert record.latency == pytest.approx(5.0)

    def test_unknown_query_time(self):
        record = make_record(time=105.0)
        assert record.query_time == -1.0
        assert record.latency is None

    def test_json_roundtrip_keeps_query_time(self):
        from repro.core.measure.records import ResponseRecord
        record = make_record(time=105.0)
        record.query_time = 100.0
        assert ResponseRecord.from_json(record.to_json()).latency == 5.0


class TestLatencySummary:
    def test_exact_percentiles(self):
        store = MeasurementStore("limewire")
        for index, delay in enumerate([1.0, 2.0, 3.0, 4.0]):
            record = make_record(time=100.0 + delay,
                                 content_id=f"u:{index}")
            record.query_time = 100.0
            store.add(record)
        summary = latency_summary(store)
        assert summary.count == 4
        assert summary.p50 == pytest.approx(2.5)
        assert summary.mean == pytest.approx(2.5)

    def test_none_without_query_times(self):
        store = MeasurementStore("limewire")
        store.add(make_record())
        assert latency_summary(store) is None

    def test_on_campaign(self, limewire_campaign):
        summary = latency_summary(limewire_campaign.store)
        assert summary is not None
        assert summary.count > 1000
        # multi-hop overlay: sub-second medians, bounded tails
        assert 0.05 < summary.p50 < 5.0
        assert summary.p99 < 60.0
        assert summary.p10 <= summary.p50 <= summary.p90 <= summary.p99

    def test_malicious_only(self, limewire_campaign):
        summary = latency_summary(limewire_campaign.store,
                                  malicious_only=True)
        assert summary is not None
        assert summary.count == len(
            [r for r in limewire_campaign.store.malicious_responses()
             if r.latency is not None])

    def test_render(self, limewire_campaign):
        summary = latency_summary(limewire_campaign.store)
        text = summary.render("limewire")
        assert "p50" in text and "limewire" in text
