"""Tests for the report renderers."""

from repro.core import reports
from repro.core.filtering.evaluate import evaluate_filter
from repro.core.filtering.sizefilter import SizeBasedFilter


class TestTables:
    def test_t1(self, synthetic_store):
        text = reports.render_t1_summary([synthetic_store], 2.0)
        assert "T1" in text
        assert "limewire" in text
        assert "12" in text  # responses

    def test_t2(self, synthetic_store):
        text = reports.render_t2_prevalence([synthetic_store])
        assert "60.0%" in text

    def test_t3(self, synthetic_store):
        text = reports.render_t3_top_malware(synthetic_store)
        lines = text.splitlines()
        assert any("WormA" in line and "66.7%" in line for line in lines)
        assert any("WormB" in line and "100.0%" in line for line in lines)

    def test_t4(self, synthetic_store):
        text = reports.render_t4_sources(synthetic_store, top_strain="WormB")
        assert "private" in text
        assert "3.3.3.3" in text

    def test_t5(self, synthetic_store):
        size_filter = SizeBasedFilter.learn(synthetic_store, top_n=2)
        report = evaluate_filter(size_filter, synthetic_store)
        text = reports.render_t5_filters([report])
        assert "size-based" in text
        assert "100.0%" in text

    def test_t6(self, synthetic_store):
        text = reports.render_t6_size_dictionary(synthetic_store, top_n=2)
        assert "1000" in text
        assert "WormA" in text


class TestFigures:
    def test_f1(self, synthetic_store):
        text = reports.render_f1_rank_cdf(synthetic_store)
        assert "[  0]" in text
        assert "1.000" in text

    def test_f2(self, synthetic_store):
        text = reports.render_f2_size_distribution(synthetic_store)
        assert "WormB" in text

    def test_f3(self, synthetic_store):
        text = reports.render_f3_timeseries(synthetic_store)
        assert "day  0" in text
        assert "share=" in text

    def test_f4(self, synthetic_store):
        text = reports.render_f4_host_cdf(synthetic_store)
        assert "host CDF" in text

    def test_f4_with_strain(self, synthetic_store):
        text = reports.render_f4_host_cdf(synthetic_store, "WormB")
        assert "WormB" in text
