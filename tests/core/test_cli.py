"""Tests for the repro-study CLI."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def saved_store(tmp_path_factory):
    """A tiny campaign saved to disk once for all CLI tests."""
    out = tmp_path_factory.mktemp("cli")
    code = main(["run", "--network", "limewire", "--days", "0.1",
                 "--seed", "5", "--out", str(out)])
    assert code == 0
    return out / "limewire.jsonl"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.network == "both"
        assert args.days == 1.0

    def test_invalid_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--network", "kazaa"])

    def test_invalid_table_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "x.jsonl",
                                       "--table", "t99"])


class TestRun:
    def test_creates_store_file(self, saved_store):
        assert saved_store.exists()
        first_line = saved_store.read_text().splitlines()[0]
        assert "limewire" in first_line


class TestReplicate:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["replicate"])
        assert args.network == "limewire"
        assert args.seeds == 4
        assert args.workers is None

    def test_prints_report(self, capsys):
        code = main(["replicate", "--network", "limewire", "--seeds", "1",
                     "--days", "0.1", "--workers", "1"])
        assert code == 0
        output = capsys.readouterr().out
        assert "replicating limewire" in output
        assert "prevalence" in output

    def test_rejects_zero_seeds(self, capsys):
        assert main(["replicate", "--seeds", "0"]) == 2

    def test_checkpoint_journal_written_and_reused(self, tmp_path, capsys):
        journal = tmp_path / "resume.jsonl"
        args = ["replicate", "--network", "limewire", "--seeds", "1",
                "--days", "0.1", "--workers", "1",
                "--checkpoint", str(journal)]
        assert main(args) == 0
        assert journal.exists()
        lines = journal.read_text().splitlines()
        assert len(lines) == 2  # header + the one completed seed
        capsys.readouterr()
        assert main(args) == 0  # resume: nothing recomputed...
        assert len(journal.read_text().splitlines()) == 2  # ...or re-logged
        assert "prevalence" in capsys.readouterr().out


class TestChaos:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.network == "both"
        assert args.severities is None  # all rungs
        assert args.seeds == 3
        assert args.days == 0.25
        assert args.scale == 0.5
        assert not args.quick

    def test_invalid_severity_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--severities",
                                       "apocalyptic"])

    def test_sweep_prints_envelope_table(self, capsys):
        code = main(["chaos", "--network", "limewire",
                     "--severities", "off", "mild", "--seeds", "1",
                     "--days", "0.05", "--scale", "0.3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "R1 fault envelope" in output
        assert "hold" in output
        assert "claims hold across the entire swept envelope" in output


class TestAnalyze:
    def test_all_tables(self, saved_store, capsys):
        code = main(["analyze", str(saved_store)])
        assert code == 0
        output = capsys.readouterr().out
        for marker in ("T1", "T2", "T3", "T5", "T6", "F1", "F3"):
            assert marker in output

    def test_single_table(self, saved_store, capsys):
        code = main(["analyze", str(saved_store), "--table", "t2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "T2" in output
        assert "T3" not in output

    def test_missing_store_errors(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err


class TestExport:
    def test_writes_csvs(self, saved_store, tmp_path, capsys):
        out = tmp_path / "csv"
        code = main(["export", str(saved_store), "--out", str(out)])
        assert code == 0
        output = capsys.readouterr().out
        assert "t2:" in output
        assert (out / "limewire_t2.csv").exists()
        assert (out / "limewire_f1.csv").exists()

    def test_missing_store_errors(self, tmp_path):
        code = main(["export", str(tmp_path / "nope.jsonl")])
        assert code == 2


class TestFilterEval:
    def test_prints_comparison(self, saved_store, capsys):
        code = main(["filter-eval", str(saved_store)])
        assert code == 0
        output = capsys.readouterr().out
        assert "existing-limewire" in output
        assert "size-based" in output
        assert "size dictionary" in output

    def test_missing_store_errors(self, tmp_path, capsys):
        code = main(["filter-eval", str(tmp_path / "nope.jsonl")])
        assert code == 2


class TestServe:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.network == "limewire"
        assert args.port == 8000
        assert args.journal_interval is None
        assert args.verify is False

    def test_replicate_serve_port_requires_telemetry_dir(self, capsys):
        code = main(["replicate", "--serve-port", "0"])
        assert code == 2
        assert "--telemetry-dir" in capsys.readouterr().err

    def test_serve_runs_and_writes_outputs(self, tmp_path, capsys):
        out = tmp_path / "served"
        code = main(["serve", "--network", "limewire", "--days", "0.02",
                     "--scale", "0.35", "--port", "0",
                     "--out", str(out)])
        assert code == 0
        output = capsys.readouterr().out
        assert "serving http://127.0.0.1:" in output
        assert (out / "limewire_trace.json").exists()
        assert (out / "limewire_metrics.prom").exists()


class TestHotspots:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["hotspots"])
        assert args.network == "limewire"
        assert args.top == 15

    def test_prints_ranked_table(self, tmp_path, capsys):
        json_path = tmp_path / "hotspots.json"
        code = main(["hotspots", "--network", "limewire", "--days",
                     "0.02", "--scale", "0.35",
                     "--json", str(json_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "kernel hotspots" in output
        assert "share" in output
        assert json_path.exists()

    def test_reads_saved_snapshot(self, tmp_path, capsys):
        import json as json_module

        from repro.telemetry.registry import MetricRegistry
        registry = MetricRegistry()
        registry.histogram("sim_callback_wall_seconds", "Wall.",
                           labels=("label",),
                           buckets=(0.001,)).labels("scan").observe(0.0005)
        registry.get("sim_events_total") or registry.counter(
            "sim_events_total", "Events.",
            labels=("label",)).labels("scan").inc(64)
        path = tmp_path / "snap.json"
        path.write_text(json_module.dumps(registry.snapshot()))
        code = main(["hotspots", "--snapshot", str(path)])
        assert code == 0
        assert "scan" in capsys.readouterr().out


class TestDoctor:
    @staticmethod
    def make_torn_checkpoint(path):
        from repro.resilience import frame_line
        header = frame_line({"kind": "header", "fingerprint": "a" * 64})
        seed = frame_line({"kind": "seed", "seed": 1, "metrics": {"x": 1.0}})
        path.write_text(header + "\n" + seed + "\n" + seed[:11])
        return path

    def test_parser(self):
        args = build_parser().parse_args(["doctor", "out/", "--repair"])
        assert [p.name for p in args.paths] == ["out"] and args.repair

    def test_no_artifacts_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["doctor", str(empty)]) == 2
        assert "no artifacts" in capsys.readouterr().out

    def test_missing_explicit_path_is_damage(self, tmp_path):
        assert main(["doctor", str(tmp_path / "gone.jsonl")]) == 1

    def test_healthy_artifacts_exit_0(self, tmp_path, capsys):
        (tmp_path / "ok.json").write_text("{}")
        assert main(["doctor", str(tmp_path)]) == 0
        assert "healthy" in capsys.readouterr().out

    def test_damage_without_repair_exits_1(self, tmp_path, capsys):
        self.make_torn_checkpoint(tmp_path / "ckpt.jsonl")
        assert main(["doctor", str(tmp_path)]) == 1
        output = capsys.readouterr().out
        assert "torn" in output and "--repair" in output

    def test_repair_then_healthy(self, tmp_path, capsys):
        journal = self.make_torn_checkpoint(tmp_path / "ckpt.jsonl")
        assert main(["doctor", str(tmp_path), "--repair"]) == 0
        capsys.readouterr()
        # second pass sees the truncated file as healthy
        assert main(["doctor", str(journal)]) == 0
        assert "healthy" in capsys.readouterr().out


class TestSupervisedReplicate:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["replicate"])
        assert not args.supervise
        assert args.deadline == 300.0
        assert args.stall_timeout == 60.0
        assert args.hang_seeds is None

    def test_hang_seeds_require_supervision(self, capsys):
        code = main(["replicate", "--seeds", "1", "--hang-seeds", "1"])
        assert code == 2
        assert "--supervise" in capsys.readouterr().err

    def test_supervised_run_matches_plain(self, capsys):
        base = ["replicate", "--network", "limewire", "--seeds", "1",
                "--days", "0.05", "--workers", "1"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert main(base + ["--supervise", "--stall-timeout", "10"]) == 0
        supervised = capsys.readouterr().out
        # identical science: every metric line agrees bit-for-bit
        metrics = [line for line in plain.splitlines() if "%" in line]
        assert metrics
        assert metrics == [line for line in supervised.splitlines()
                           if "%" in line]
