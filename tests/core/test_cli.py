"""Tests for the repro-study CLI."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def saved_store(tmp_path_factory):
    """A tiny campaign saved to disk once for all CLI tests."""
    out = tmp_path_factory.mktemp("cli")
    code = main(["run", "--network", "limewire", "--days", "0.1",
                 "--seed", "5", "--out", str(out)])
    assert code == 0
    return out / "limewire.jsonl"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.network == "both"
        assert args.days == 1.0

    def test_invalid_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--network", "kazaa"])

    def test_invalid_table_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "x.jsonl",
                                       "--table", "t99"])


class TestRun:
    def test_creates_store_file(self, saved_store):
        assert saved_store.exists()
        first_line = saved_store.read_text().splitlines()[0]
        assert "limewire" in first_line


class TestReplicate:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["replicate"])
        assert args.network == "limewire"
        assert args.seeds == 4
        assert args.workers is None

    def test_prints_report(self, capsys):
        code = main(["replicate", "--network", "limewire", "--seeds", "1",
                     "--days", "0.1", "--workers", "1"])
        assert code == 0
        output = capsys.readouterr().out
        assert "replicating limewire" in output
        assert "prevalence" in output

    def test_rejects_zero_seeds(self, capsys):
        assert main(["replicate", "--seeds", "0"]) == 2

    def test_checkpoint_journal_written_and_reused(self, tmp_path, capsys):
        journal = tmp_path / "resume.jsonl"
        args = ["replicate", "--network", "limewire", "--seeds", "1",
                "--days", "0.1", "--workers", "1",
                "--checkpoint", str(journal)]
        assert main(args) == 0
        assert journal.exists()
        lines = journal.read_text().splitlines()
        assert len(lines) == 2  # header + the one completed seed
        capsys.readouterr()
        assert main(args) == 0  # resume: nothing recomputed...
        assert len(journal.read_text().splitlines()) == 2  # ...or re-logged
        assert "prevalence" in capsys.readouterr().out


class TestChaos:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.network == "both"
        assert args.severities is None  # all rungs
        assert args.seeds == 3
        assert args.days == 0.25
        assert args.scale == 0.5
        assert not args.quick

    def test_invalid_severity_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--severities",
                                       "apocalyptic"])

    def test_sweep_prints_envelope_table(self, capsys):
        code = main(["chaos", "--network", "limewire",
                     "--severities", "off", "mild", "--seeds", "1",
                     "--days", "0.05", "--scale", "0.3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "R1 fault envelope" in output
        assert "hold" in output
        assert "claims hold across the entire swept envelope" in output


class TestAnalyze:
    def test_all_tables(self, saved_store, capsys):
        code = main(["analyze", str(saved_store)])
        assert code == 0
        output = capsys.readouterr().out
        for marker in ("T1", "T2", "T3", "T5", "T6", "F1", "F3"):
            assert marker in output

    def test_single_table(self, saved_store, capsys):
        code = main(["analyze", str(saved_store), "--table", "t2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "T2" in output
        assert "T3" not in output

    def test_missing_store_errors(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err


class TestExport:
    def test_writes_csvs(self, saved_store, tmp_path, capsys):
        out = tmp_path / "csv"
        code = main(["export", str(saved_store), "--out", str(out)])
        assert code == 0
        output = capsys.readouterr().out
        assert "t2:" in output
        assert (out / "limewire_t2.csv").exists()
        assert (out / "limewire_f1.csv").exists()

    def test_missing_store_errors(self, tmp_path):
        code = main(["export", str(tmp_path / "nope.jsonl")])
        assert code == 2


class TestFilterEval:
    def test_prints_comparison(self, saved_store, capsys):
        code = main(["filter-eval", str(saved_store)])
        assert code == 0
        output = capsys.readouterr().out
        assert "existing-limewire" in output
        assert "size-based" in output
        assert "size dictionary" in output

    def test_missing_store_errors(self, tmp_path, capsys):
        code = main(["filter-eval", str(tmp_path / "nope.jsonl")])
        assert code == 2


class TestServe:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.network == "limewire"
        assert args.port == 8000
        assert args.journal_interval is None
        assert args.verify is False

    def test_replicate_serve_port_requires_telemetry_dir(self, capsys):
        code = main(["replicate", "--serve-port", "0"])
        assert code == 2
        assert "--telemetry-dir" in capsys.readouterr().err

    def test_serve_runs_and_writes_outputs(self, tmp_path, capsys):
        out = tmp_path / "served"
        code = main(["serve", "--network", "limewire", "--days", "0.02",
                     "--scale", "0.35", "--port", "0",
                     "--out", str(out)])
        assert code == 0
        output = capsys.readouterr().out
        assert "serving http://127.0.0.1:" in output
        assert (out / "limewire_trace.json").exists()
        assert (out / "limewire_metrics.prom").exists()


class TestHotspots:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["hotspots"])
        assert args.network == "limewire"
        assert args.top == 15

    def test_prints_ranked_table(self, tmp_path, capsys):
        json_path = tmp_path / "hotspots.json"
        code = main(["hotspots", "--network", "limewire", "--days",
                     "0.02", "--scale", "0.35",
                     "--json", str(json_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "kernel hotspots" in output
        assert "share" in output
        assert json_path.exists()

    def test_reads_saved_snapshot(self, tmp_path, capsys):
        import json as json_module

        from repro.telemetry.registry import MetricRegistry
        registry = MetricRegistry()
        registry.histogram("sim_callback_wall_seconds", "Wall.",
                           labels=("label",),
                           buckets=(0.001,)).labels("scan").observe(0.0005)
        registry.get("sim_events_total") or registry.counter(
            "sim_events_total", "Events.",
            labels=("label",)).labels("scan").inc(64)
        path = tmp_path / "snap.json"
        path.write_text(json_module.dumps(registry.snapshot()))
        code = main(["hotspots", "--snapshot", str(path)])
        assert code == 0
        assert "scan" in capsys.readouterr().out
