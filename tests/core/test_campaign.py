"""End-to-end campaign driver tests (on the shared session campaigns)."""

import pytest

from repro.core.measure.campaign import CampaignConfig


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(duration_days=0)
        with pytest.raises(ValueError):
            CampaignConfig(query_interval_s=-5)


class TestLimewireCampaign:
    def test_queries_issued_matches_cadence(self, limewire_campaign):
        config = limewire_campaign.config
        expected = config.duration_days * 86400 / config.query_interval_s
        assert abs(limewire_campaign.store.queries_issued
                   - expected) <= expected * 0.15

    def test_responses_collected(self, limewire_campaign):
        assert len(limewire_campaign.store) > 1000

    def test_all_responses_download_attempted(self, limewire_campaign):
        unattempted = [record for record in limewire_campaign.store
                       if not record.download_attempted]
        assert unattempted == []

    def test_responses_within_campaign_window(self, limewire_campaign):
        horizon = limewire_campaign.config.duration_days * 86400
        for record in limewire_campaign.store:
            assert 0.0 <= record.time <= horizon

    def test_scanner_only_fires_on_downloaded(self, limewire_campaign):
        for record in limewire_campaign.store:
            if record.malware_name is not None:
                assert record.downloaded

    def test_malicious_ground_truth_consistency(self, limewire_campaign):
        """Every response scanned malicious must come from a host that
        ground truth says is infected."""
        world = limewire_campaign.world
        network = world.network
        for record in limewire_campaign.store.malicious_responses():
            servent = network.servent_by_guid(
                bytes.fromhex(record.responder_key))
            assert servent is not None
            assert world.ground_truth.get(servent.endpoint_id)

    def test_no_clean_content_scans_dirty(self, limewire_campaign):
        """Responses from never-infected hosts never scan malicious."""
        world = limewire_campaign.world
        network = world.network
        for record in limewire_campaign.store:
            servent = network.servent_by_guid(
                bytes.fromhex(record.responder_key))
            if servent is None:
                continue
            if not world.ground_truth.get(servent.endpoint_id):
                assert record.malware_name is None


class TestOpenFTCampaign:
    def test_responses_collected(self, openft_campaign):
        assert len(openft_campaign.store) > 300

    def test_store_network_label(self, openft_campaign):
        assert openft_campaign.store.network == "openft"
        assert all(record.network == "openft"
                   for record in openft_campaign.store)

    def test_malicious_ground_truth_consistency(self, openft_campaign):
        world = openft_campaign.world
        network = world.network
        for record in openft_campaign.store.malicious_responses():
            node = network.node_by_host(record.responder_host)
            assert node is not None
            assert world.ground_truth.get(node.endpoint_id)
