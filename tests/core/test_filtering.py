"""Tests for the filtering layer (exact values on the synthetic store)."""

import pytest

from repro.core.filtering.base import FilterReport
from repro.core.filtering.evaluate import evaluate_filter, evaluate_filters
from repro.core.filtering.existing import ExistingLimewireFilter
from repro.core.filtering.sizefilter import SizeBasedFilter
from repro.core.measure.store import MeasurementStore
from repro.malware.corpus import limewire_strains
from repro.malware.infection import strain_body_blob

from .conftest import make_record


class TestSizeBasedFilter:
    def test_learn_blocks_top_sizes(self, synthetic_store):
        size_filter = SizeBasedFilter.learn(synthetic_store, top_n=2)
        assert size_filter.blocked_sizes == frozenset({1000, 2000, 2001})

    def test_blocks_only_downloadable_types(self, synthetic_store):
        size_filter = SizeBasedFilter.learn(synthetic_store, top_n=2)
        assert size_filter.blocks(make_record(filename="x.exe", size=1000))
        assert not size_filter.blocks(
            make_record(filename="x.mp3", size=1000))
        assert not size_filter.blocks(
            make_record(filename="x.exe", size=999))

    def test_evaluation_exact(self, synthetic_store):
        size_filter = SizeBasedFilter.learn(synthetic_store, top_n=2)
        report = evaluate_filter(size_filter, synthetic_store)
        assert report.malicious_total == 6
        assert report.malicious_blocked == 6
        assert report.detection_rate == pytest.approx(1.0)
        # one clean zip sits at a blocked size -> exactly one false positive
        assert report.clean_blocked == 1
        assert report.false_positive_rate == pytest.approx(1 / 4)

    def test_learn_top1_misses_wormb(self, synthetic_store):
        size_filter = SizeBasedFilter.learn(synthetic_store, top_n=1)
        report = evaluate_filter(size_filter, synthetic_store)
        assert report.malicious_blocked == 4
        assert report.detection_rate == pytest.approx(4 / 6)

    def test_learn_from_clean_store_fails(self):
        store = MeasurementStore("limewire")
        store.add(make_record())
        with pytest.raises(ValueError):
            SizeBasedFilter.learn(store)

    def test_empty_sizes_rejected(self):
        with pytest.raises(ValueError):
            SizeBasedFilter(blocked_sizes=())

    def test_len(self, synthetic_store):
        assert len(SizeBasedFilter.learn(synthetic_store, top_n=2)) == 3


class TestExistingFilter:
    def test_blocks_by_content_id(self):
        existing = ExistingLimewireFilter(blocked_content_ids={"u:bad"})
        assert existing.blocks(make_record(content_id="u:bad"))
        assert not existing.blocks(make_record(content_id="u:good"))

    def test_blocks_by_junk_keyword(self):
        existing = ExistingLimewireFilter(blocked_content_ids=set())
        assert existing.blocks(make_record(filename="mandragore_copy.exe"))
        assert not existing.blocks(make_record(filename="normal_file.exe"))

    def test_stale_blocklist_misses_current_top_bodies(self):
        strains = limewire_strains()
        existing = ExistingLimewireFilter.stale_blocklist(
            strains, unknown_top_variants=3)
        top_body = strain_body_blob(strains[0], 0)
        assert not existing.blocks(
            make_record(content_id=top_body.sha1_urn(),
                        size=top_body.size))

    def test_stale_blocklist_catches_old_variant(self):
        strains = limewire_strains()
        existing = ExistingLimewireFilter.stale_blocklist(
            strains, unknown_top_variants=3)
        # strain B's secondary variant is on the list
        old_variant = strain_body_blob(strains[1], 1)
        assert existing.blocks(make_record(content_id=old_variant.sha1_urn()))

    def test_stale_blocklist_catches_tail_strains(self):
        strains = limewire_strains()
        existing = ExistingLimewireFilter.stale_blocklist(strains)
        tail_body = strain_body_blob(strains[-1], 0)
        assert existing.blocks(make_record(content_id=tail_body.sha1_urn()))


class TestEvaluate:
    def test_evaluate_filters_order(self, synthetic_store):
        filters = [ExistingLimewireFilter(blocked_content_ids=set()),
                   SizeBasedFilter.learn(synthetic_store, top_n=2)]
        reports = evaluate_filters(filters, synthetic_store)
        assert [report.filter_name for report in reports] == [
            "existing-limewire", "size-based"]

    def test_report_rates_on_empty(self):
        report = FilterReport(filter_name="f", network="limewire",
                              malicious_total=0, malicious_blocked=0,
                              clean_total=0, clean_blocked=0)
        assert report.detection_rate == 0.0
        assert report.false_positive_rate == 0.0
