"""Tests for the measurement store."""

import pytest

from repro.core.measure.store import MeasurementStore

from .conftest import make_record


class TestSelections:
    def test_len_and_iter(self, synthetic_store):
        assert len(synthetic_store) == 12
        assert len(list(synthetic_store)) == 12

    def test_downloadable_responses(self, synthetic_store):
        assert len(synthetic_store.downloadable_responses()) == 10

    def test_malicious_responses(self, synthetic_store):
        assert len(synthetic_store.malicious_responses()) == 6

    def test_clean_downloadable(self, synthetic_store):
        assert len(synthetic_store.clean_downloadable_responses()) == 4

    def test_unique_hosts(self, synthetic_store):
        assert synthetic_store.unique_hosts() == 8

    def test_unique_contents(self, synthetic_store):
        assert synthetic_store.unique_contents() == 9

    def test_by_day(self, synthetic_store):
        days = synthetic_store.by_day()
        assert set(days) == {0, 1}
        assert len(days[1]) == 2

    def test_records_predicate(self, synthetic_store):
        mp3s = synthetic_store.records(lambda r: r.extension == "mp3")
        assert len(mp3s) == 1

    def test_network_mismatch_rejected(self, synthetic_store):
        with pytest.raises(ValueError):
            synthetic_store.add(make_record(network="openft"))

    def test_queries_counted(self, synthetic_store):
        assert synthetic_store.queries_issued == 2


class TestPersistence:
    def test_save_load_roundtrip(self, synthetic_store, tmp_path):
        path = tmp_path / "store.jsonl"
        written = synthetic_store.save(path)
        assert written == 12
        loaded = MeasurementStore.load(path)
        assert loaded.network == "limewire"
        assert loaded.queries_issued == 2
        assert len(loaded) == 12
        assert (len(loaded.malicious_responses())
                == len(synthetic_store.malicious_responses()))
        assert loaded.records()[0] == synthetic_store.records()[0]

    def test_empty_store_roundtrip(self, tmp_path):
        store = MeasurementStore("openft")
        path = tmp_path / "empty.jsonl"
        store.save(path)
        loaded = MeasurementStore.load(path)
        assert len(loaded) == 0
        assert loaded.network == "openft"
