"""Tests for the oracle filter and the size-filter learning curve."""

import pytest

from repro.core.filtering.evaluate import evaluate_filter
from repro.core.filtering.learning import learning_curve
from repro.core.filtering.oracle import OracleHashFilter
from repro.core.filtering.sizefilter import SizeBasedFilter
from repro.core.measure.store import MeasurementStore

from .conftest import make_record


class TestOracleHashFilter:
    def test_blocks_exactly_seen_malicious(self, synthetic_store):
        oracle = OracleHashFilter.learn(synthetic_store)
        assert len(oracle) == 3  # WormA body + two WormB bodies
        report = evaluate_filter(oracle, synthetic_store)
        assert report.detection_rate == pytest.approx(1.0)
        assert report.false_positive_rate == 0.0

    def test_misses_unseen_variant(self, synthetic_store):
        oracle = OracleHashFilter.learn(synthetic_store)
        fresh_variant = make_record(content_id="u:brand-new",
                                    malware="WormA")
        assert not oracle.blocks(fresh_variant)

    def test_on_campaign_matches_size_filter(self, limewire_campaign):
        store = limewire_campaign.store
        oracle_report = evaluate_filter(OracleHashFilter.learn(store),
                                        store)
        size_report = evaluate_filter(SizeBasedFilter.learn(store), store)
        assert oracle_report.detection_rate == pytest.approx(1.0)
        # the four-integer dictionary performs within a point of the
        # perfect retrospective hash feed
        assert size_report.detection_rate >= (
            oracle_report.detection_rate - 0.01)


class TestLearningCurve:
    def make_two_day_store(self):
        store = MeasurementStore("limewire")
        # day 0: training data for WormA at size 1000
        for index in range(5):
            store.add(make_record(filename=f"a{index}.exe", size=1000,
                                  content_id="u:a", malware="WormA",
                                  time=100.0 + index))
        store.add(make_record(filename="c.exe", size=4000,
                              content_id="u:c", time=120.0))
        # day 1: test data -- same worm plus clean
        for index in range(3):
            store.add(make_record(filename=f"b{index}.exe", size=1000,
                                  content_id="u:a", malware="WormA",
                                  time=90_000.0 + index))
        store.add(make_record(filename="d.exe", size=5000,
                              content_id="u:d", time=90_500.0))
        return store

    def test_single_split(self):
        points = learning_curve(self.make_two_day_store(), top_n=1)
        assert len(points) == 1
        point = points[0]
        assert point.train_days == 1
        assert point.train_malicious == 5
        assert point.dictionary_size == 1
        assert point.report.detection_rate == pytest.approx(1.0)
        assert point.report.false_positive_rate == 0.0

    def test_on_campaign_day_zero_is_enough(self, limewire_campaign):
        points = learning_curve(limewire_campaign.store)
        if not points:
            pytest.skip("campaign shorter than two days")
        first = points[0]
        assert first.report.detection_rate >= 0.98

    def test_empty_store(self):
        assert learning_curve(MeasurementStore("limewire")) == []
