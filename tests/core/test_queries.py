"""Tests for the query workload."""

import itertools

import pytest

from repro.core.measure.queries import EVERGREEN_QUERIES, QueryWorkload
from repro.files.catalog import CatalogConfig, ContentCatalog
from repro.simnet.rng import SeededStream


@pytest.fixture()
def catalog():
    return ContentCatalog(CatalogConfig(works=300), SeededStream(2, "c"))


class TestQueryWorkload:
    def test_round_robin(self):
        workload = QueryWorkload(["a", "b", "c"])
        drawn = [workload.next_query() for _ in range(7)]
        assert drawn == ["a", "b", "c", "a", "b", "c", "a"]

    def test_iter(self):
        workload = QueryWorkload(["x", "y"])
        assert list(itertools.islice(iter(workload), 4)) == [
            "x", "y", "x", "y"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            QueryWorkload([])

    def test_from_catalog_includes_evergreen(self, catalog):
        workload = QueryWorkload.from_catalog(catalog,
                                              SeededStream(3, "w"))
        for query in EVERGREEN_QUERIES:
            assert query in workload.queries

    def test_from_catalog_category_quotas(self, catalog):
        workload = QueryWorkload.from_catalog(
            catalog, SeededStream(3, "w"), popular_works=40,
            include_evergreen=False)
        # queries come from works; count how many match archive/exe works
        keyword_to_type = {}
        for work in catalog.works:
            keyword_to_type[" ".join(work.keywords[:2])] = (
                work.file_type.value)
        categories = [keyword_to_type.get(query) for query in
                      workload.queries]
        archive_like = sum(1 for c in categories
                           if c in ("archive", "executable"))
        # quotas say 50% of popular-work queries target archive/exe
        assert archive_like >= len(workload.queries) * 0.35

    def test_from_catalog_no_duplicates(self, catalog):
        workload = QueryWorkload.from_catalog(catalog, SeededStream(3, "w"))
        assert len(workload.queries) == len(set(workload.queries))

    def test_deterministic_for_seed(self, catalog):
        a = QueryWorkload.from_catalog(catalog, SeededStream(4, "w"))
        catalog2 = ContentCatalog(CatalogConfig(works=300),
                                  SeededStream(2, "c"))
        b = QueryWorkload.from_catalog(catalog2, SeededStream(4, "w"))
        assert a.queries == b.queries
