"""Tests for the uncertainty analysis."""

import pytest

from repro.core.analysis.uncertainty import (ConfidenceInterval,
                                             bootstrap_ci,
                                             prevalence_statistic,
                                             private_share_statistic,
                                             top_share_statistic,
                                             wilson_interval)
from repro.core.measure.store import MeasurementStore


class TestWilson:
    def test_half_proportion_symmetric(self):
        ci = wilson_interval(50, 100)
        assert ci.estimate == pytest.approx(0.5)
        assert ci.low < 0.5 < ci.high
        assert (0.5 - ci.low) == pytest.approx(ci.high - 0.5, abs=1e-9)

    def test_known_value(self):
        # classic check: 8/10 at 95% -> approx [0.49, 0.94]
        ci = wilson_interval(8, 10)
        assert ci.low == pytest.approx(0.49, abs=0.01)
        assert ci.high == pytest.approx(0.94, abs=0.01)

    def test_shrinks_with_more_trials(self):
        narrow = wilson_interval(680, 1000)
        wide = wilson_interval(68, 100)
        assert narrow.width < wide.width

    def test_edge_counts(self):
        assert wilson_interval(0, 10).low == 0.0
        assert wilson_interval(10, 10).high == 1.0
        zero = wilson_interval(0, 0)
        assert (zero.low, zero.high) == (0.0, 1.0)

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)

    def test_contains(self):
        ci = ConfidenceInterval(0.5, 0.4, 0.6, 0.95)
        assert ci.contains(0.45)
        assert not ci.contains(0.7)


class TestStatistics:
    def test_prevalence_statistic(self, synthetic_store):
        assert prevalence_statistic(
            synthetic_store.records()) == pytest.approx(0.6)

    def test_private_share_statistic(self, synthetic_store):
        assert private_share_statistic(
            synthetic_store.records()) == pytest.approx(1 / 6)

    def test_top_share_statistic(self, synthetic_store):
        assert top_share_statistic(1)(
            synthetic_store.records()) == pytest.approx(4 / 6)
        assert top_share_statistic(5)(
            synthetic_store.records()) == pytest.approx(1.0)

    def test_statistics_on_empty(self):
        assert prevalence_statistic([]) == 0.0
        assert private_share_statistic([]) == 0.0
        assert top_share_statistic(3)([]) == 0.0


class TestBootstrap:
    def test_interval_brackets_estimate(self, synthetic_store):
        ci = bootstrap_ci(synthetic_store, prevalence_statistic,
                          resamples=200, seed=1)
        assert ci.low <= ci.estimate <= ci.high
        assert ci.estimate == pytest.approx(0.6)

    def test_deterministic_for_seed(self, synthetic_store):
        a = bootstrap_ci(synthetic_store, prevalence_statistic,
                         resamples=100, seed=7)
        b = bootstrap_ci(synthetic_store, prevalence_statistic,
                         resamples=100, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_campaign_prevalence_tight(self, limewire_campaign):
        ci = bootstrap_ci(limewire_campaign.store, prevalence_statistic,
                          resamples=100, seed=3)
        assert ci.width < 0.05  # thousands of records -> tight interval
        assert ci.contains(ci.estimate)
        assert 0.55 <= ci.estimate <= 0.80

    def test_empty_store(self):
        ci = bootstrap_ci(MeasurementStore("limewire"),
                          prevalence_statistic, resamples=10)
        assert ci.estimate == 0.0

    def test_invalid_resamples(self, synthetic_store):
        with pytest.raises(ValueError):
            bootstrap_ci(synthetic_store, prevalence_statistic,
                         resamples=0)
