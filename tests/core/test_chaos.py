"""Tests for the R1 fault-envelope sweep logic (no campaigns run)."""

import pytest

from repro.core.chaos import (CLAIM_BANDS, PREVALENCE_GAP_MIN, ChaosReport,
                              SeverityResult, _check_bands,
                              run_fault_envelope)
from repro.core.experiments import MetricSummary, ReplicationReport


def report(network, prevalence, top3, degraded=False):
    values = {"prevalence": prevalence, "top3_share": top3}
    return ReplicationReport(
        network=network, seeds=(1,),
        metrics={name: MetricSummary(name=name, values=(value,))
                 for name, value in values.items()},
        completed_seeds=(1,), degraded=degraded)


def healthy_reports():
    return {"limewire": report("limewire", 0.72, 0.99),
            "openft": report("openft", 0.09, 0.85)}


class TestCheckBands:
    def test_healthy_metrics_pass(self):
        assert _check_bands("mild", healthy_reports()) == []

    def test_out_of_band_metric_flagged(self):
        reports = healthy_reports()
        low, high = CLAIM_BANDS["limewire"]["prevalence"]
        reports["limewire"] = report("limewire", low - 0.1, 0.99)
        violations = _check_bands("severe", reports)
        assert len(violations) == 1
        assert "severe/limewire: prevalence" in violations[0]

    def test_collapsed_gap_flagged(self):
        # both arms inside their own bands, but the C1 *gap* is gone
        reports = {"limewire": report("limewire", 0.55, 0.99),
                   "openft": report("openft", 0.29, 0.85)}
        assert 0.55 < PREVALENCE_GAP_MIN * 0.29
        violations = _check_bands("extreme", reports)
        assert len(violations) == 1
        assert "C1 gap collapsed" in violations[0]

    def test_single_network_skips_gap_check(self):
        reports = {"limewire": report("limewire", 0.72, 0.99)}
        assert _check_bands("mild", reports) == []


class TestChaosReport:
    def rung(self, severity, violations=(), degraded=False):
        return SeverityResult(
            severity=severity,
            reports={"limewire": report("limewire", 0.72, 0.99,
                                        degraded=degraded)},
            violations=tuple(violations))

    def test_all_holding(self):
        sweep = ChaosReport(results=(self.rung("off"), self.rung("mild")),
                            seeds=(1,), duration_days=0.25, scale=0.5)
        assert sweep.ok
        assert sweep.breaking_point is None
        assert sweep.envelope == "mild"
        assert "entire swept envelope" in sweep.render()

    def test_breaking_point_is_first_broken_rung(self):
        sweep = ChaosReport(
            results=(self.rung("off"), self.rung("mild"),
                     self.rung("severe", violations=("boom",))),
            seeds=(1,), duration_days=0.25, scale=0.5)
        assert not sweep.ok
        assert sweep.breaking_point == "severe"
        assert sweep.envelope == "mild"
        text = sweep.render()
        assert "breaking point: severe" in text
        assert "!! boom" in text

    def test_degraded_rung_flagged_in_render(self):
        sweep = ChaosReport(results=(self.rung("off", degraded=True),),
                            seeds=(1,), duration_days=0.25, scale=0.5)
        assert sweep.results[0].degraded
        assert "(degraded)" in sweep.render()


class TestRunFaultEnvelope:
    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="unknown severities"):
            run_fault_envelope(severities=("off", "apocalyptic"))
