"""Tests for the sample census and host turnover analyses."""

from repro.core.analysis.census import new_hosts_per_day, sample_census
from repro.core.measure.store import MeasurementStore

from .conftest import make_record


class TestSampleCensus:
    def test_exact_on_synthetic(self, synthetic_store):
        samples = sample_census(synthetic_store)
        by_id = {sample.content_id: sample for sample in samples}
        # WormA is one content served from three hosts
        assert by_id["u:a"].responses == 4
        assert by_id["u:a"].hosts == 3
        assert by_id["u:a"].malware_name == "WormA"
        # WormB has two distinct bodies
        assert by_id["u:b1"].responses == 1
        assert len(samples) == 3

    def test_ordering_by_responses(self, synthetic_store):
        samples = sample_census(synthetic_store)
        counts = [sample.responses for sample in samples]
        assert counts == sorted(counts, reverse=True)

    def test_few_samples_behind_many_responses(self, limewire_campaign):
        """The abstract's claim: very few distinct malware."""
        store = limewire_campaign.store
        samples = sample_census(store)
        malicious = len(store.malicious_responses())
        assert malicious > 1000
        assert len(samples) <= 20  # thousands of responses, ~dozen bodies
        # and the biggest sample alone covers a large share
        assert samples[0].responses > malicious * 0.3

    def test_empty(self):
        assert sample_census(MeasurementStore("limewire")) == []


class TestNewHostsPerDay:
    def test_exact_on_synthetic(self, synthetic_store):
        series = new_hosts_per_day(synthetic_store)
        # day 0: hosts 1.1.1.1, 2.2.2.2, 192.168.0.5, 3.3.3.3 serve
        # malware; day 1: 1.1.1.1 again (not new)
        assert series == [4, 0]

    def test_counts_only_first_sighting(self):
        store = MeasurementStore("limewire")
        store.add(make_record(host="1.1.1.1", time=10.0, malware="X"))
        store.add(make_record(host="1.1.1.1", time=90_000.0, malware="X"))
        store.add(make_record(host="2.2.2.2", time=90_001.0, malware="X"))
        assert new_hosts_per_day(store) == [1, 1]

    def test_empty(self):
        assert new_hosts_per_day(MeasurementStore("limewire")) == []
