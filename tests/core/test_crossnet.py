"""Tests for the cross-network comparison."""

import pytest

from repro.core.analysis.crossnet import compare_networks


class TestCompareNetworks:
    @pytest.fixture(scope="class")
    def comparison(self, limewire_campaign, openft_campaign):
        return compare_networks(limewire_campaign.store,
                                openft_campaign.store)

    def test_networks_labelled(self, comparison):
        assert comparison.network_a == "limewire"
        assert comparison.network_b == "openft"

    def test_prevalence_ordering(self, comparison):
        assert comparison.prevalence_a > 5 * comparison.prevalence_b

    def test_strains_shared_across_ecosystems(self, comparison):
        # Kapucen/SdDrop/Istbar/Zlob circulate in both corpora
        assert len(comparison.shared_strains) >= 2
        assert comparison.exclusive_a  # echo worms are Limewire-only
        assert "W32.Gnuman.A" in comparison.exclusive_a
        assert "W32.Duel.A" in comparison.exclusive_b

    def test_partition(self, comparison):
        assert (comparison.shared_strains | comparison.exclusive_a
                == comparison.strains_a)
        assert not (comparison.exclusive_a & comparison.exclusive_b)

    def test_render(self, comparison):
        text = comparison.render()
        assert "limewire vs openft" in text
        assert "shared" in text
