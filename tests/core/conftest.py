"""Fixtures and builders for core-layer tests."""

import pytest

from repro.core.measure.records import ResponseRecord
from repro.core.measure.store import MeasurementStore


def make_record(network="limewire", time=100.0, query="q",
                host="8.8.8.8", port=6346, key=None, filename="file.exe",
                size=1000, content_id="urn:sha1:X", downloaded=True,
                malware=None):
    """A response record with sensible defaults for analysis tests."""
    record = ResponseRecord(
        network=network, time=time, query=query, responder_host=host,
        responder_port=port, responder_key=key or f"{host}:{port}",
        filename=filename, size=size, content_id=content_id,
    )
    record.download_attempted = True
    record.downloaded = downloaded
    record.malware_name = malware
    return record


@pytest.fixture()
def synthetic_store():
    """A hand-built store with exactly known composition.

    10 downloadable archive/exe responses: 6 malicious (4x WormA at size
    1000 from 3 hosts incl. one private, 2x WormB at sizes 2000/2001) and
    4 clean; plus 1 failed download and 1 mp3 that do not count.
    """
    store = MeasurementStore("limewire")
    store.note_query()
    store.note_query()
    rows = [
        make_record(filename="a1.exe", size=1000, host="1.1.1.1",
                    content_id="u:a", malware="WormA"),
        make_record(filename="a2.exe", size=1000, host="1.1.1.1",
                    content_id="u:a", malware="WormA", time=90_000.0),
        make_record(filename="a3.exe", size=1000, host="2.2.2.2",
                    content_id="u:a", malware="WormA"),
        make_record(filename="a4.exe", size=1000, host="192.168.0.5",
                    content_id="u:a", malware="WormA"),
        make_record(filename="b1.zip", size=2000, host="3.3.3.3",
                    content_id="u:b1", malware="WormB"),
        make_record(filename="b2.zip", size=2001, host="3.3.3.3",
                    content_id="u:b2", malware="WormB"),
        make_record(filename="c1.zip", size=5000, host="4.4.4.4",
                    content_id="u:c1"),
        make_record(filename="c2.zip", size=2000, host="4.4.4.4",
                    content_id="u:c2"),  # clean at a malware size!
        make_record(filename="c3.exe", size=7000, host="5.5.5.5",
                    content_id="u:c3", time=90_000.0),
        make_record(filename="c4.exe", size=8000, host="5.5.5.5",
                    content_id="u:c4"),
        make_record(filename="failed.exe", size=9000, host="6.6.6.6",
                    content_id="u:f", downloaded=False),
        make_record(filename="song.mp3", size=4_000_000, host="7.7.7.7",
                    content_id="u:m"),
    ]
    store.extend(rows)
    return store
