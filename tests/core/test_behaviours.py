"""Tests for the behaviour-class breakdown."""

import pytest

from repro.core.analysis.behaviours import behaviour_breakdown
from repro.malware.corpus import limewire_strains, openft_strains


class TestBehaviourBreakdown:
    def test_limewire_is_an_echo_epidemic(self, limewire_campaign):
        rows = behaviour_breakdown(limewire_campaign.store,
                                   limewire_strains())
        by_behaviour = {row.behaviour: row for row in rows}
        assert by_behaviour["query_echo"].share > 0.8
        assert "unknown" not in by_behaviour

    def test_openft_is_a_shared_folder_epidemic(self, openft_campaign):
        rows = behaviour_breakdown(openft_campaign.store, openft_strains())
        by_behaviour = {row.behaviour: row for row in rows}
        assert "query_echo" not in by_behaviour
        assert by_behaviour["share_infector"].share > 0.5

    def test_shares_sum_to_one(self, limewire_campaign):
        rows = behaviour_breakdown(limewire_campaign.store,
                                   limewire_strains())
        assert sum(row.share for row in rows) == pytest.approx(1.0)

    def test_unknown_bucket(self, limewire_campaign):
        # scanning names won't match the OpenFT corpus' strain list only
        # partially; mismatched names land in "unknown"
        rows = behaviour_breakdown(limewire_campaign.store, [])
        assert len(rows) == 1
        assert rows[0].behaviour == "unknown"
        assert rows[0].share == pytest.approx(1.0)

    def test_empty_store(self):
        from repro.core.measure.store import MeasurementStore
        assert behaviour_breakdown(MeasurementStore("limewire"),
                                   limewire_strains()) == []
