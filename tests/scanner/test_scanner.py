"""Tests for signatures, databases and the scan engine."""

import pytest

from repro.files.payload import Blob
from repro.malware.corpus import limewire_strains
from repro.malware.infection import dropper_archive_blob, strain_body_blob
from repro.scanner.database import SignatureDatabase, database_for_strains
from repro.scanner.engine import ScanEngine
from repro.scanner.signatures import Signature, SignatureKind


class TestSignature:
    def test_pattern_signature(self):
        signature = Signature.for_pattern("X", b"BYTES")
        assert signature.kind is SignatureKind.PATTERN

    def test_hash_signature(self):
        signature = Signature.for_hash("X", "urn:sha1:ABC")
        assert signature.kind is SignatureKind.HASH

    def test_pattern_requires_bytes(self):
        with pytest.raises(ValueError):
            Signature(name="X", kind=SignatureKind.PATTERN)

    def test_hash_requires_urn(self):
        with pytest.raises(ValueError):
            Signature(name="X", kind=SignatureKind.HASH)


class TestDatabase:
    def test_full_coverage(self):
        strains = limewire_strains()
        database = database_for_strains(strains)
        assert len(database) == len(strains)
        assert set(database.names()) == {s.av_name for s in strains}

    def test_partial_coverage_keeps_prefix(self):
        strains = limewire_strains()
        database = database_for_strains(strains, coverage=0.3)
        assert len(database) == round(len(strains) * 0.3)
        assert strains[0].av_name in database.names()
        assert strains[-1].av_name not in database.names()

    def test_invalid_coverage(self):
        with pytest.raises(ValueError):
            database_for_strains(limewire_strains(), coverage=1.5)

    def test_hash_lookup(self):
        database = SignatureDatabase([Signature.for_hash("H", "urn:sha1:A")])
        assert database.match_hash("urn:sha1:A").name == "H"
        assert database.match_hash("urn:sha1:B") is None


class TestEngine:
    @pytest.fixture()
    def strains(self):
        return limewire_strains()

    @pytest.fixture()
    def engine(self, strains):
        return ScanEngine(database_for_strains(strains))

    def test_clean_blob(self, engine):
        verdict = engine.scan(Blob(content_key="clean", extension="exe",
                                   size=1234))
        assert verdict.clean
        assert verdict.primary_name is None

    def test_detects_body(self, engine, strains):
        verdict = engine.scan(strain_body_blob(strains[0]))
        assert not verdict.clean
        assert verdict.primary_name == strains[0].av_name
        assert verdict.detections[0].location == "/"

    def test_detects_inside_archive(self, engine, strains):
        dropper = next(s for s in strains
                       if s.behaviour.value == "trojan_dropper")
        verdict = engine.scan(dropper_archive_blob(dropper))
        assert not verdict.clean
        assert verdict.primary_name == dropper.av_name
        assert verdict.detections[0].location == "/0"

    def test_depth_limit_truncates(self, strains):
        engine = ScanEngine(database_for_strains(strains), max_depth=0)
        dropper = next(s for s in strains
                       if s.behaviour.value == "trojan_dropper")
        verdict = engine.scan(dropper_archive_blob(dropper))
        assert verdict.clean  # marker is below the depth limit
        assert verdict.truncated

    def test_hash_signature_detection(self, strains):
        body = strain_body_blob(strains[0])
        database = SignatureDatabase(
            [Signature.for_hash("ByHash", body.sha1_urn())])
        engine = ScanEngine(database)
        assert engine.scan(body).primary_name == "ByHash"

    def test_members_scanned_counted(self, engine, strains):
        dropper = next(s for s in strains
                       if s.behaviour.value == "trojan_dropper")
        verdict = engine.scan(dropper_archive_blob(dropper))
        assert verdict.members_scanned == 2

    def test_scans_performed_counter(self, engine):
        engine.scan(Blob(content_key="c", extension="exe", size=1))
        engine.scan(Blob(content_key="d", extension="exe", size=1))
        assert engine.scans_performed == 2

    def test_negative_depth_rejected(self, strains):
        with pytest.raises(ValueError):
            ScanEngine(database_for_strains(strains), max_depth=-1)

    def test_partial_coverage_misses_tail(self, strains):
        engine = ScanEngine(database_for_strains(strains, coverage=0.2))
        assert not engine.scan(strain_body_blob(strains[0])).clean
        assert engine.scan(strain_body_blob(strains[-1])).clean


class TestVerdictCache:
    @pytest.fixture()
    def strains(self):
        return limewire_strains()

    @pytest.fixture()
    def engine(self, strains):
        return ScanEngine(database_for_strains(strains))

    def test_cached_verdict_equals_uncached(self, engine, strains):
        blob = dropper_archive_blob(
            next(s for s in strains if s.behaviour.value == "trojan_dropper"))
        first = engine.scan(blob)
        second = engine.scan(blob)  # served from cache
        assert engine.cache_hits == 1 and engine.cache_misses == 1
        assert second.clean == first.clean
        assert second.detections == first.detections
        assert second.members_scanned == first.members_scanned
        assert second.truncated == first.truncated

    def test_identical_content_hits_cache(self, engine, strains):
        # two distinct Blob objects with identical content share a urn
        first = strain_body_blob(strains[0])
        twin = strain_body_blob(strains[0])
        assert first is not twin
        engine.scan(first)
        verdict = engine.scan(twin)
        assert engine.cache_hits == 1
        assert verdict.primary_name == strains[0].av_name

    def test_cached_verdict_is_isolated(self, engine, strains):
        blob = strain_body_blob(strains[0])
        engine.scan(blob).detections.clear()  # caller mutates its copy
        assert engine.scan(blob).primary_name == strains[0].av_name

    def test_database_update_invalidates_cache(self, strains):
        missing = strain_body_blob(strains[-1])
        database = database_for_strains(strains, coverage=0.2)
        engine = ScanEngine(database)
        assert engine.scan(missing).clean  # cached as clean
        database.add(Signature.for_pattern(strains[-1].av_name,
                                           strains[-1].marker))
        verdict = engine.scan(missing)  # cache dropped, new sig fires
        assert not verdict.clean
        assert verdict.primary_name == strains[-1].av_name

    def test_hash_signature_update_invalidates_cache(self, strains):
        blob = strain_body_blob(strains[0])
        database = SignatureDatabase()
        engine = ScanEngine(database)
        assert engine.scan(blob).clean
        database.add(Signature.for_hash("ByHash", blob.sha1_urn()))
        assert engine.scan(blob).primary_name == "ByHash"

    def test_lru_bound_respected(self, strains):
        engine = ScanEngine(database_for_strains(strains), cache_size=2)
        blobs = [Blob(content_key=f"c{i}", extension="exe", size=10 + i)
                 for i in range(4)]
        for blob in blobs:
            engine.scan(blob)
        assert len(engine._verdict_cache) == 2
        engine.scan(blobs[3])  # newest two stay cached
        assert engine.cache_hits == 1

    def test_cache_disabled_with_zero_size(self, strains):
        engine = ScanEngine(database_for_strains(strains), cache_size=0)
        blob = strain_body_blob(strains[0])
        assert engine.scan(blob).primary_name == engine.scan(
            blob).primary_name
        assert engine.cache_hits == 0

    def test_hit_rate_property(self, engine, strains):
        blob = strain_body_blob(strains[0])
        assert engine.cache_hit_rate == 0.0
        engine.scan(blob)
        engine.scan(blob)
        engine.scan(blob)
        assert engine.cache_hit_rate == pytest.approx(2 / 3)

    def test_negative_cache_size_rejected(self, strains):
        with pytest.raises(ValueError):
            ScanEngine(database_for_strains(strains), cache_size=-1)
