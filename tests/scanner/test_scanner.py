"""Tests for signatures, databases and the scan engine."""

import pytest

from repro.files.payload import Blob
from repro.malware.corpus import limewire_strains
from repro.malware.infection import dropper_archive_blob, strain_body_blob
from repro.scanner.database import SignatureDatabase, database_for_strains
from repro.scanner.engine import ScanEngine
from repro.scanner.signatures import Signature, SignatureKind


class TestSignature:
    def test_pattern_signature(self):
        signature = Signature.for_pattern("X", b"BYTES")
        assert signature.kind is SignatureKind.PATTERN

    def test_hash_signature(self):
        signature = Signature.for_hash("X", "urn:sha1:ABC")
        assert signature.kind is SignatureKind.HASH

    def test_pattern_requires_bytes(self):
        with pytest.raises(ValueError):
            Signature(name="X", kind=SignatureKind.PATTERN)

    def test_hash_requires_urn(self):
        with pytest.raises(ValueError):
            Signature(name="X", kind=SignatureKind.HASH)


class TestDatabase:
    def test_full_coverage(self):
        strains = limewire_strains()
        database = database_for_strains(strains)
        assert len(database) == len(strains)
        assert set(database.names()) == {s.av_name for s in strains}

    def test_partial_coverage_keeps_prefix(self):
        strains = limewire_strains()
        database = database_for_strains(strains, coverage=0.3)
        assert len(database) == round(len(strains) * 0.3)
        assert strains[0].av_name in database.names()
        assert strains[-1].av_name not in database.names()

    def test_invalid_coverage(self):
        with pytest.raises(ValueError):
            database_for_strains(limewire_strains(), coverage=1.5)

    def test_hash_lookup(self):
        database = SignatureDatabase([Signature.for_hash("H", "urn:sha1:A")])
        assert database.match_hash("urn:sha1:A").name == "H"
        assert database.match_hash("urn:sha1:B") is None


class TestEngine:
    @pytest.fixture()
    def strains(self):
        return limewire_strains()

    @pytest.fixture()
    def engine(self, strains):
        return ScanEngine(database_for_strains(strains))

    def test_clean_blob(self, engine):
        verdict = engine.scan(Blob(content_key="clean", extension="exe",
                                   size=1234))
        assert verdict.clean
        assert verdict.primary_name is None

    def test_detects_body(self, engine, strains):
        verdict = engine.scan(strain_body_blob(strains[0]))
        assert not verdict.clean
        assert verdict.primary_name == strains[0].av_name
        assert verdict.detections[0].location == "/"

    def test_detects_inside_archive(self, engine, strains):
        dropper = next(s for s in strains
                       if s.behaviour.value == "trojan_dropper")
        verdict = engine.scan(dropper_archive_blob(dropper))
        assert not verdict.clean
        assert verdict.primary_name == dropper.av_name
        assert verdict.detections[0].location == "/0"

    def test_depth_limit_truncates(self, strains):
        engine = ScanEngine(database_for_strains(strains), max_depth=0)
        dropper = next(s for s in strains
                       if s.behaviour.value == "trojan_dropper")
        verdict = engine.scan(dropper_archive_blob(dropper))
        assert verdict.clean  # marker is below the depth limit
        assert verdict.truncated

    def test_hash_signature_detection(self, strains):
        body = strain_body_blob(strains[0])
        database = SignatureDatabase(
            [Signature.for_hash("ByHash", body.sha1_urn())])
        engine = ScanEngine(database)
        assert engine.scan(body).primary_name == "ByHash"

    def test_members_scanned_counted(self, engine, strains):
        dropper = next(s for s in strains
                       if s.behaviour.value == "trojan_dropper")
        verdict = engine.scan(dropper_archive_blob(dropper))
        assert verdict.members_scanned == 2

    def test_scans_performed_counter(self, engine):
        engine.scan(Blob(content_key="c", extension="exe", size=1))
        engine.scan(Blob(content_key="d", extension="exe", size=1))
        assert engine.scans_performed == 2

    def test_negative_depth_rejected(self, strains):
        with pytest.raises(ValueError):
            ScanEngine(database_for_strains(strains), max_depth=-1)

    def test_partial_coverage_misses_tail(self, strains):
        engine = ScanEngine(database_for_strains(strains, coverage=0.2))
        assert not engine.scan(strain_body_blob(strains[0])).clean
        assert engine.scan(strain_body_blob(strains[-1])).clean
