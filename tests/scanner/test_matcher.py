"""Tests for the multi-pattern matcher.

The contract is exact agreement with the naive per-signature loop:
``i in matcher.match(body)`` iff ``patterns[i] in body``.  The
randomized corpus deliberately generates nested, overlapping and
duplicated patterns -- the cases where a plain regex alternation would
shadow matches.
"""

import random

import pytest

from repro.scanner.matcher import MultiPatternMatcher


def naive_match(patterns, body):
    return frozenset(i for i, pattern in enumerate(patterns)
                     if pattern in body)


class TestMultiPatternMatcher:
    def test_simple_hit_and_miss(self):
        matcher = MultiPatternMatcher([b"WORM", b"TROJAN"])
        assert matcher.match(b"xxWORMyy") == frozenset({0})
        assert matcher.match(b"clean body") == frozenset()
        assert matcher.match(b"TROJAN and WORM") == frozenset({0, 1})

    def test_nested_patterns_both_reported(self):
        # "AB" occurs inside "ABC": a bare alternation reports only one
        matcher = MultiPatternMatcher([b"AB", b"ABC"])
        assert matcher.match(b"xxABCxx") == frozenset({0, 1})

    def test_overlapping_occurrences(self):
        matcher = MultiPatternMatcher([b"ABA", b"BAB"])
        assert matcher.match(b"ABAB") == frozenset({0, 1})

    def test_duplicate_patterns_all_indices(self):
        matcher = MultiPatternMatcher([b"X", b"Y", b"X"])
        assert matcher.match(b"zzXzz") == frozenset({0, 2})

    def test_pattern_spanning_suffix_links(self):
        matcher = MultiPatternMatcher([b"he", b"she", b"his", b"hers"])
        assert matcher.match(b"ushers") == frozenset({0, 1, 3})

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            MultiPatternMatcher([b"ok", b""])

    def test_no_patterns(self):
        matcher = MultiPatternMatcher([])
        assert matcher.match(b"anything") == frozenset()

    def test_binary_patterns(self):
        patterns = [b"\x00\xff\x00", b"\xff\x00", b".*+?[](){}"]
        matcher = MultiPatternMatcher(patterns)
        body = b"a\x00\xff\x00b and regex .*+?[](){} metachars"
        assert matcher.match(body) == naive_match(patterns, body)

    def test_randomized_corpus_agrees_with_naive_loop(self):
        # property-style: many random pattern sets vs random bodies over
        # a tiny alphabet, to force heavy overlap
        rng = random.Random(1234)
        alphabet = b"ab\x00"
        for trial in range(150):
            patterns = []
            for _ in range(rng.randrange(1, 10)):
                length = rng.randrange(1, 6)
                patterns.append(bytes(rng.choice(alphabet)
                                      for _ in range(length)))
            matcher = MultiPatternMatcher(patterns)
            for _ in range(10):
                body_len = rng.randrange(0, 40)
                body = bytes(rng.choice(alphabet) for _ in range(body_len))
                assert matcher.match(body) == naive_match(patterns, body), (
                    f"trial {trial}: patterns={patterns!r} body={body!r}")

    def test_randomized_marker_bodies(self):
        # realistic shape: marker-like patterns embedded in filler bodies
        rng = random.Random(99)
        for trial in range(50):
            patterns = [f"MARKER:{rng.randrange(8)}".encode("ascii")
                        for _ in range(rng.randrange(2, 8))]
            matcher = MultiPatternMatcher(patterns)
            body = b"|".join(
                rng.choice(patterns + [b"benign", b"filler"])
                for _ in range(rng.randrange(0, 6))) + b"#hdr"
            assert matcher.match(body) == naive_match(patterns, body)
