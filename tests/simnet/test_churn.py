"""Tests for session churn."""

import pytest

from repro.simnet.churn import (ALWAYS_ON, HOME_PEER, SERVER_LIKE,
                                ChurnProcess, ChurnProfile)
from repro.simnet.clock import days, hours


class TestProfiles:
    def test_stationary_availability_home(self):
        assert HOME_PEER.stationary_availability() == pytest.approx(1 / 3)

    def test_always_on_nearly_one(self):
        assert ALWAYS_ON.stationary_availability() > 0.999

    def test_server_like_majority_up(self):
        assert SERVER_LIKE.stationary_availability() > 0.8


class TestChurnProcess:
    def run_process(self, sim, profile, horizon):
        state = {"online_time": 0.0, "last_change": 0.0, "online": False}

        def on_up():
            state["last_change"] = sim.now
            state["online"] = True

        def on_down():
            if state["online"]:
                state["online_time"] += sim.now - state["last_change"]
            state["online"] = False
            state["last_change"] = sim.now

        process = ChurnProcess(sim, sim.stream("churn"), profile,
                               on_up=on_up, on_down=on_down)
        process.start()
        sim.run_until(horizon)
        if state["online"]:
            state["online_time"] += horizon - state["last_change"]
        return process, state

    def test_initial_state_announced(self, sim):
        calls = []
        process = ChurnProcess(sim, sim.stream("c"), ALWAYS_ON,
                               on_up=lambda: calls.append("up"),
                               on_down=lambda: calls.append("down"))
        process.start()
        assert calls in (["up"], ["down"])
        assert calls == ["up"]  # ALWAYS_ON starts online

    def test_availability_approximates_stationary(self, sim):
        _, state = self.run_process(sim, HOME_PEER, days(30))
        availability = state["online_time"] / days(30)
        assert 0.2 < availability < 0.5  # stationary is 1/3

    def test_always_on_stays_up(self, sim):
        process, state = self.run_process(sim, ALWAYS_ON, days(10))
        availability = state["online_time"] / days(10)
        assert availability > 0.99

    def test_transitions_counted(self, sim):
        process, _ = self.run_process(sim, HOME_PEER, days(10))
        # ~10 days of ~6h cycles -> roughly 40 transitions
        assert 10 < process.transitions < 120

    def test_until_stops_transitions(self, sim):
        profile = ChurnProfile(mean_session_s=hours(1),
                               mean_offline_s=hours(1),
                               initial_online_probability=1.0)
        process = ChurnProcess(sim, sim.stream("c"), profile,
                               on_up=lambda: None, on_down=lambda: None,
                               until=hours(5))
        process.start()
        sim.run_until(days(5))
        transitions_at_cutoff = process.transitions
        sim.run_until(days(10))
        assert process.transitions == transitions_at_cutoff

    def test_final_transition_clamped_to_horizon_not_dropped(self, sim):
        # regression: a transition drawn past ``until`` used to be
        # discarded, freezing ``online`` mid-session -- the drain phase
        # then saw a state the horizon never actually produced.  The
        # clamp moves that flip to exactly ``until`` instead.
        profile = ChurnProfile(mean_session_s=hours(1000),
                               mean_offline_s=hours(1),
                               initial_online_probability=1.0)
        flips = []
        process = ChurnProcess(sim, sim.stream("c"), profile,
                               on_up=lambda: None,
                               on_down=lambda: flips.append(sim.now),
                               until=hours(5))
        process.start()
        sim.run_until(days(1))
        # the ~1000h session could not end inside the horizon, so the
        # flip ran at the horizon itself, leaving the state fresh
        assert flips == [hours(5)]
        assert process.transitions == 1
        assert not process.online

    def test_no_transitions_scheduled_past_the_clamp(self, sim):
        profile = ChurnProfile(mean_session_s=hours(1000),
                               mean_offline_s=hours(1000),
                               initial_online_probability=1.0)
        process = ChurnProcess(sim, sim.stream("c"), profile,
                               on_up=lambda: None, on_down=lambda: None,
                               until=hours(5))
        process.start()
        sim.run_until(days(30))
        # exactly the one clamped flip; the re-schedule at the horizon
        # returns instead of queueing another event
        assert process.transitions == 1
