"""Tests for the virtual transport."""

import pytest

from repro.simnet.rng import SeededStream
from repro.simnet.transport import DROP_CAUSES, LatencyModel, Transport


def make_pair(sim, loss_rate=0.0):
    transport = Transport(sim, loss_rate=loss_rate)
    inbox_a, inbox_b = [], []
    transport.attach("a", lambda env: inbox_a.append(env))
    transport.attach("b", lambda env: inbox_b.append(env))
    return transport, inbox_a, inbox_b


class TestDelivery:
    def test_basic_delivery(self, sim):
        transport, _, inbox_b = make_pair(sim)
        assert transport.send("a", "b", b"hello")
        sim.run_until(10.0)
        assert len(inbox_b) == 1
        assert inbox_b[0].payload == b"hello"
        assert inbox_b[0].src == "a"

    def test_delivery_has_latency(self, sim):
        transport, _, inbox_b = make_pair(sim)
        received_at = []
        transport.detach("b")
        transport.attach("b2", lambda env: received_at.append(sim.now))
        transport.send("a", "b2", b"x")
        sim.run_until(10.0)
        assert received_at and received_at[0] > 0.0

    def test_unknown_destination_dropped(self, sim):
        transport, _, _ = make_pair(sim)
        assert not transport.send("a", "nobody", b"x")
        assert transport.dropped == 1

    def test_offline_sender_dropped(self, sim):
        transport, _, inbox_b = make_pair(sim)
        transport.set_online("a", False)
        assert not transport.send("a", "b", b"x")
        sim.run_until(10.0)
        assert inbox_b == []

    def test_receiver_offline_at_delivery_loses_message(self, sim):
        transport, _, inbox_b = make_pair(sim)
        transport.send("a", "b", b"x")
        transport.set_online("b", False)  # goes down while in flight
        sim.run_until(10.0)
        assert inbox_b == []
        assert transport.dropped == 1

    def test_counters(self, sim):
        transport, _, _ = make_pair(sim)
        transport.send("a", "b", b"x")
        transport.send("b", "a", b"y")
        sim.run_until(10.0)
        assert transport.delivered == 2
        assert transport.endpoint("a").sent == 1
        assert transport.endpoint("a").received == 1

    def test_double_attach_rejected(self, sim):
        transport, _, _ = make_pair(sim)
        with pytest.raises(ValueError):
            transport.attach("a", lambda env: None)

    def test_is_online_for_unknown_endpoint(self, sim):
        transport, _, _ = make_pair(sim)
        assert not transport.is_online("ghost")


class TestDropCauses:
    def test_all_causes_start_at_zero(self, sim):
        transport, _, _ = make_pair(sim)
        assert set(transport.drop_causes) == set(DROP_CAUSES)
        assert transport.dropped == 0

    def test_offline_sender_labelled(self, sim):
        transport, _, _ = make_pair(sim)
        transport.set_online("a", False)
        transport.send("a", "b", b"x")
        assert transport.drop_causes["offline-sender"] == 1

    def test_unknown_destination_labelled(self, sim):
        transport, _, _ = make_pair(sim)
        transport.send("a", "nobody", b"x")
        assert transport.drop_causes["unknown-dst"] == 1

    def test_random_loss_labelled(self, sim):
        transport, _, _ = make_pair(sim, loss_rate=0.5)
        for _ in range(100):
            transport.send("a", "b", b"x")
        assert transport.drop_causes["random-loss"] > 0
        assert (transport.drop_causes["random-loss"]
                == transport.dropped)

    def test_offline_receiver_labelled(self, sim):
        transport, _, _ = make_pair(sim)
        transport.send("a", "b", b"x")
        transport.set_online("b", False)
        sim.run_until(10.0)
        assert transport.drop_causes["offline-recv"] == 1

    def test_dropped_sums_every_cause(self, sim):
        transport, _, _ = make_pair(sim)
        transport.send("a", "nobody", b"x")     # unknown-dst
        transport.set_online("a", False)
        transport.send("a", "b", b"x")          # offline-sender
        transport.count_drop("fault-injected")  # injector tap-in
        assert transport.dropped == 3
        assert transport.drop_causes["fault-injected"] == 1

    def test_count_drop_accepts_new_causes(self, sim):
        # injectors may tag causes the built-in tuple does not list
        transport, _, _ = make_pair(sim)
        transport.count_drop("experimental")
        assert transport.drop_causes["experimental"] == 1
        assert transport.dropped == 1


class TestLoss:
    def test_lossy_link_drops_some(self, sim):
        transport, _, inbox_b = make_pair(sim, loss_rate=0.5)
        for _ in range(200):
            transport.send("a", "b", b"x")
        sim.run_until(100.0)
        assert 40 < len(inbox_b) < 160

    def test_invalid_loss_rate(self, sim):
        with pytest.raises(ValueError):
            Transport(sim, loss_rate=1.0)


class TestLatencyModel:
    def test_delay_in_bounds(self):
        model = LatencyModel()
        stream = SeededStream(1, "lat")
        for _ in range(100):
            delay = model.delay(stream, 0)
            assert model.base_min_s <= delay <= model.base_max_s

    def test_serialization_grows_with_size(self):
        model = LatencyModel(base_min_s=0.0, base_max_s=0.0)
        stream = SeededStream(1, "lat")
        assert model.delay(stream, 125_000) == pytest.approx(1.0)
