"""Tests for the tiered scheduler (calendar queue + timer wheel).

The centrepiece is a randomized differential harness: arbitrary
schedule/cancel/pop/peek programs -- including past-horizon
re-laddering, overflow residency and mass cancellation -- executed
against the reference heap and the tiered queue in lockstep, asserting
identical pop order and identical accounting at every step.  The unit
tests then pin the structural edges individually: bucket overflow,
wheel cascades, whole-bucket tombstone skips, straggler merging and the
windowed kernel drain.
"""

import random

import pytest

from repro.devtools.sanitizer import digest_telemetry
from repro.simnet import fastpath
from repro.simnet.events import EventQueue
from repro.simnet.kernel import Simulator
from repro.simnet.sched import (LEVEL_WIDTHS, NEAR_SPAN, WHEEL_SLOTS,
                                TieredEventQueue)

#: past every wheel level's reach from time zero -- lands in overflow
BEYOND_WHEELS = NEAR_SPAN + LEVEL_WIDTHS[-1] * WHEEL_SLOTS + 1.0


def drain(queue):
    """Pop everything, returning the (time, seq) order."""
    order = []
    while True:
        event = queue.pop()
        if event is None:
            return order
        order.append((event.time, event.seq))


class TestDifferential:
    """Random programs against the reference heap, step-for-step."""

    def _run_trial(self, seed):
        rng = random.Random(seed)
        heap, tier = EventQueue(), TieredEventQueue()
        now = [0.0]
        pairs = []
        fired_h, fired_t = [], []

        def push(t):
            he = heap.push(t, lambda: None, "l")
            te = tier.push(t, lambda: None, "l")
            assert (he.time, he.seq) == (te.time, te.seq)
            pairs.append((he, te))

        for _ in range(rng.randrange(40, 250)):
            op = rng.random()
            if op < 0.5:
                r = rng.random()
                if r < 0.4:
                    push(now[0] + rng.uniform(0, NEAR_SPAN * 0.8))
                elif r < 0.7:
                    push(now[0] + rng.uniform(NEAR_SPAN, 600))
                elif r < 0.85:
                    push(now[0] + rng.uniform(600, 50_000))
                elif r < 0.95 and pairs:
                    # exact tie with an already-scheduled instant
                    push(max(pairs[rng.randrange(len(pairs))][0].time,
                             now[0]))
                else:
                    push(now[0] + rng.uniform(50_000, 3_000_000))
            elif op < 0.75 and pairs:
                k = rng.randrange(len(pairs))
                if rng.random() < 0.3 and len(pairs) > 5:
                    # mass cancellation burst (fired events included:
                    # cancel must stay counter-neutral for those)
                    for j in range(rng.randrange(3, 20)):
                        he, te = pairs[(k + j) % len(pairs)]
                        heap.cancel(he)
                        tier.cancel(te)
                else:
                    he, te = pairs[k]
                    heap.cancel(he)
                    tier.cancel(te)
            elif op < 0.9:
                horizon = now[0] + rng.uniform(0, 2000) * rng.choice(
                    [0.01, 1, 50])
                while True:
                    eh = heap.pop_ready(horizon)
                    et = tier.pop_ready(horizon)
                    assert (eh is None) == (et is None)
                    if eh is None:
                        break
                    assert (eh.time, eh.seq) == (et.time, et.seq)
                    now[0] = eh.time
                    fired_h.append(eh.seq)
                    fired_t.append(et.seq)
            else:
                assert heap.peek_time() == tier.peek_time()
            assert len(heap) == len(tier)
            assert heap.cancelled_total == tier.cancelled_total
        assert drain(heap) == drain(tier)
        assert fired_h == fired_t
        assert len(heap) == len(tier) == 0

    @pytest.mark.parametrize("seed", range(60))
    def test_random_program_matches_heap(self, seed):
        self._run_trial(seed)

    def test_kernel_digest_identical_across_twins(self):
        """Same campaign, both schedulers, telemetry on: same digest."""

        def run(slow_path):
            fastpath.set_slow_path(slow_path)
            try:
                telemetry = digest_telemetry()
                sim = Simulator(seed=5, telemetry=telemetry)
            finally:
                fastpath.set_slow_path(False)
            stream = sim.stream("load")

            def tick(i):
                if i % 3 == 0:
                    handle = sim.after(stream.uniform(0.1, 400.0),
                                       lambda: None, label="retry")
                    if i % 6 == 0:
                        sim.cancel(handle)
                if i % 7 == 0:
                    sim.after(stream.uniform(0.0, 0.5),
                              lambda: None, label="deliver")

            for i in range(300):
                sim.at(stream.uniform(0.0, 200.0), lambda i=i: tick(i),
                       label="seed")
            sim.run_until(50.0)
            sim.run_all()
            return telemetry.hexdigest(), sim.events_processed

        assert run(False) == run(True)


class TestTierInvariant:
    """near + wheel == depth must hold on both scheduler twins."""

    @pytest.mark.parametrize("factory", [TieredEventQueue, EventQueue],
                             ids=["tiered", "heap"])
    def test_twin_consistent_tier_split(self, factory):
        rng = random.Random(29)
        queue = factory()
        live = []
        for step in range(400):
            action = rng.random()
            if action < 0.55 or not live:
                # spread pushes across window, wheels and overflow
                when = rng.choice((
                    rng.uniform(0.0, NEAR_SPAN),
                    rng.uniform(NEAR_SPAN, NEAR_SPAN * 50),
                    BEYOND_WHEELS + rng.uniform(0.0, 100.0)))
                live.append(queue.push(when, lambda: None))
            elif action < 0.8:
                event = live.pop(rng.randrange(len(live)))
                queue.cancel(event)
            else:
                popped = queue.pop()
                if popped is not None:
                    live.remove(popped)
            assert (queue.near_depth + queue.wheel_depth
                    == len(queue)), f"invariant broke at step {step}"
        drain(queue)
        assert queue.near_depth + queue.wheel_depth == len(queue) == 0


class TestWheelEdges:
    def test_overflow_bucket_holds_beyond_top_level(self):
        queue = TieredEventQueue()
        far = queue.push(BEYOND_WHEELS, lambda: None)
        near = queue.push(1.0, lambda: None)
        assert queue.wheel_depth == 1
        assert queue.near_depth == 1
        assert queue.pop() is near
        # re-anchoring must reach into the overflow once the wheels
        # are empty
        assert queue.pop() is far
        assert queue.pop() is None

    def test_overflow_reentry_cascades_into_wheels(self):
        queue = TieredEventQueue()
        times = [BEYOND_WHEELS + delta for delta in
                 (0.0, 0.25, NEAR_SPAN * 3, 70_000.0)]
        events = [queue.push(t, lambda: None) for t in times]
        popped = [queue.pop() for _ in events]
        assert [e.time for e in popped] == sorted(times)
        assert queue.pop() is None

    def test_cascade_preserves_order_across_level_boundaries(self):
        queue = TieredEventQueue()
        # straddle every level boundary: entries in one coarse slot
        # must split between the window and finer levels on re-anchor
        reach0 = LEVEL_WIDTHS[0] * WHEEL_SLOTS
        times = [reach0 - 0.5, reach0 + 0.5,
                 reach0 + LEVEL_WIDTHS[1] - 0.5,
                 reach0 + LEVEL_WIDTHS[1] + 0.5]
        for t in times:
            queue.push(t, lambda: None)
        assert [queue.pop().time for _ in times] == sorted(times)

    def test_whole_dead_bucket_dropped_without_sifting(self):
        queue = TieredEventQueue()
        # a far bucket full of tombstones plus one live straggler
        dead = [queue.push(100.0 + i * 0.001, lambda: None)
                for i in range(50)]
        live = queue.push(500.0, lambda: None)
        for event in dead:
            queue.cancel(event)
        assert queue.dead_events == 50
        before = queue.compactions
        assert queue.pop() is live
        # the dead bucket was purged in bulk during re-anchoring
        assert queue.compactions > before
        assert queue.dead_events == 0
        assert len(queue) == 0

    def test_mass_cancellation_drains_to_empty(self):
        queue = TieredEventQueue()
        events = [queue.push(float(i % 97) + 0.5, lambda: None)
                  for i in range(300)]
        for event in events:
            queue.cancel(event)
        assert len(queue) == 0
        assert queue.cancelled_total == 300
        assert queue.pop() is None
        assert queue.dead_events == 0  # drained pops purge in bulk


class TestWindowEdges:
    def test_straggler_lands_in_active_window(self):
        queue = TieredEventQueue()
        queue.push(1.0, lambda: None)
        later = queue.push(5.0, lambda: None)
        first = queue.pop()
        assert first.time == 1.0
        # scheduled mid-consumption, earlier than the remaining window
        straggler = queue.push(2.0, lambda: None)
        assert queue.pop() is straggler
        assert queue.pop() is later

    def test_tie_at_now_fires_in_seq_order(self):
        queue = TieredEventQueue()
        a = queue.push(3.0, lambda: None)
        assert queue.pop() is a
        b = queue.push(3.0, lambda: None)
        c = queue.push(3.0, lambda: None)
        assert queue.pop() is b
        assert queue.pop() is c

    def test_pop_ready_horizon_is_inclusive(self):
        queue = TieredEventQueue()
        at = queue.push(2.0, lambda: None)
        beyond = queue.push(2.0000001, lambda: None)
        assert queue.pop_ready(2.0) is at
        assert queue.pop_ready(2.0) is None
        assert queue.peek_time() == beyond.time

    def test_reladdering_jumps_empty_stretches(self):
        queue = TieredEventQueue()
        sparse = [0.5, NEAR_SPAN * 50 + 0.25, NEAR_SPAN * 5000 + 0.125]
        for t in sparse:
            queue.push(t, lambda: None)
        assert [queue.pop().time for _ in sparse] == sparse
        assert queue.pop() is None

    def test_cancel_after_fire_leaves_counters_alone(self):
        # the twin-consistency rule: cancelling a fired event marks it
        # but must not disturb live/dead/cancelled accounting
        queue = TieredEventQueue()
        event = queue.push(1.0, lambda: None)
        assert queue.pop() is event
        queue.cancel(event)
        queue.cancel(event)
        assert queue.cancelled_total == 0
        assert len(queue) == 0
        assert queue.dead_events == 0

    def test_negative_time_rejected(self):
        queue = TieredEventQueue()
        with pytest.raises(ValueError):
            queue.push(-0.1, lambda: None)

    def test_iter_entries_spans_all_tiers(self):
        queue = TieredEventQueue()
        times = {1.0, 100.0, BEYOND_WHEELS}
        for t in times:
            queue.push(t, lambda: None, label="x")
        assert {entry[0] for entry in queue.iter_entries()} == times
        assert {entry[2].label for entry in queue.iter_entries()} == {"x"}


class TestWindowedKernelDrain:
    """The kernel rides the window by index; prove the semantics hold."""

    def _sim(self):
        sim = Simulator(seed=9)
        assert isinstance(sim.queue, TieredEventQueue)
        return sim

    def test_callback_scheduling_at_now_fires_in_order(self):
        sim = self._sim()
        log = []

        def first():
            log.append("first")
            # same instant as the queued 'second': must fire after it
            # (higher seq), before 'third'
            sim.at(sim.now, lambda: log.append("inserted"))

        sim.at(1.0, first)
        sim.at(1.0, lambda: log.append("second"))
        sim.at(2.0, lambda: log.append("third"))
        sim.run_all()
        assert log == ["first", "second", "inserted", "third"]

    def test_halt_stops_mid_window(self):
        sim = self._sim()
        log = []
        sim.at(1.0, lambda: (log.append(1), sim.halt()))
        sim.at(1.5, lambda: log.append(2))
        assert sim.run_until(10.0) == 1
        assert log == [1]
        assert len(sim.queue) == 1  # the second event is still queued
        assert sim.run_until(10.0) == 1
        assert log == [1, 2]

    def test_max_events_bounds_mid_window(self):
        sim = self._sim()
        for i in range(10):
            sim.at(1.0 + i * 0.1, lambda: None)
        assert sim.run_until(10.0, max_events=4) == 4
        assert len(sim.queue) == 6

    def test_cancel_during_drain_skips_in_window(self):
        sim = self._sim()
        log = []
        victim = sim.at(1.5, lambda: log.append("victim"))
        sim.at(1.0, lambda: sim.cancel(victim))
        sim.at(2.0, lambda: log.append("after"))
        sim.run_all()
        assert log == ["after"]
        assert sim.queue.cancelled_total == 1

    def test_run_until_advances_clock_to_horizon(self):
        sim = self._sim()
        sim.at(1.0, lambda: None)
        sim.at(20.0, lambda: None)
        sim.run_until(10.0)
        assert sim.now == 10.0
        assert len(sim.queue) == 1
