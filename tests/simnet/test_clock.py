"""Tests for the virtual clock."""

import pytest

from repro.simnet.clock import (SECONDS_PER_DAY, VirtualClock, days, hours,
                                minutes)


class TestConversions:
    def test_minutes(self):
        assert minutes(2) == 120.0

    def test_hours(self):
        assert hours(1.5) == 5400.0

    def test_days(self):
        assert days(2) == 2 * SECONDS_PER_DAY


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_same_time_ok(self):
        clock = VirtualClock(3.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_no_backwards(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.999)

    def test_day_index(self):
        clock = VirtualClock()
        assert clock.day_index() == 0
        clock.advance_to(SECONDS_PER_DAY - 1)
        assert clock.day_index() == 0
        clock.advance_to(SECONDS_PER_DAY)
        assert clock.day_index() == 1
        clock.advance_to(2.5 * SECONDS_PER_DAY)
        assert clock.day_index() == 2

    def test_repr_mentions_time(self):
        assert "12.5" in repr(VirtualClock(12.5))
