"""Tests for the transport trace tap."""

import pytest

from repro.simnet.trace import TransportTrace
from repro.simnet.transport import Transport


def make_world(sim):
    transport = Transport(sim)
    transport.attach("a", lambda env: None)
    transport.attach("b", lambda env: None)
    return transport


def classify_by_first_byte(payload: bytes) -> str:
    return {0x01: "one", 0x02: "two"}.get(payload[0] if payload else -1,
                                          "other")


class TestTransportTrace:
    def test_captures_deliveries(self, sim):
        transport = make_world(sim)
        trace = TransportTrace(transport, classify_by_first_byte)
        trace.install()
        transport.send("a", "b", b"\x01payload")
        transport.send("b", "a", b"\x02x")
        sim.run_until(30.0)
        assert trace.captured == 2
        messages = trace.messages()
        assert messages[0].kind in ("one", "two")
        assert messages[0].size > 0

    def test_counts_and_bytes_by_kind(self, sim):
        transport = make_world(sim)
        with TransportTrace(transport, classify_by_first_byte) as trace:
            transport.send("a", "b", b"\x01aaaa")
            transport.send("a", "b", b"\x01bb")
            transport.send("a", "b", b"\x02c")
            sim.run_until(30.0)
        assert trace.counts_by_kind() == {"one": 2, "two": 1}
        assert trace.bytes_by_kind() == {"one": 8, "two": 2}
        assert trace.total_bytes() == 10

    def test_uninstall_stops_capture(self, sim):
        transport = make_world(sim)
        trace = TransportTrace(transport, classify_by_first_byte)
        trace.install()
        transport.send("a", "b", b"\x01x")
        sim.run_until(10.0)
        trace.uninstall()
        transport.send("a", "b", b"\x01y")
        sim.run_until(20.0)
        assert trace.captured == 1

    def test_delivery_still_happens(self, sim):
        transport = Transport(sim)
        inbox = []
        transport.attach("a", lambda env: None)
        transport.attach("b", inbox.append)
        with TransportTrace(transport, classify_by_first_byte):
            transport.send("a", "b", b"\x01x")
            sim.run_until(10.0)
        assert len(inbox) == 1

    def test_broken_classifier_does_not_break_delivery(self, sim):
        transport = Transport(sim)
        inbox = []
        transport.attach("a", lambda env: None)
        transport.attach("b", inbox.append)

        def explode(payload):
            raise RuntimeError("boom")

        with TransportTrace(transport, explode) as trace:
            transport.send("a", "b", b"x")
            sim.run_until(10.0)
        assert len(inbox) == 1
        assert trace.messages()[0].kind == "unparseable"

    def test_ring_bounded(self, sim):
        transport = make_world(sim)
        with TransportTrace(transport, classify_by_first_byte,
                            capacity=5) as trace:
            for _ in range(20):
                transport.send("a", "b", b"\x01x")
            sim.run_until(60.0)
        assert trace.captured == 20
        assert len(trace.messages()) == 5

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            TransportTrace(make_world(sim), classify_by_first_byte,
                           capacity=0)


class TestStackedTraces:
    """Several traces tapping one transport, uninstalled in any order."""

    def test_stacked_traces_both_capture(self, sim):
        transport = make_world(sim)
        first = TransportTrace(transport, classify_by_first_byte)
        second = TransportTrace(transport, classify_by_first_byte)
        first.install()
        second.install()
        transport.send("a", "b", b"\x01x")
        sim.run_until(10.0)
        assert first.captured == 1
        assert second.captured == 1
        second.uninstall()
        first.uninstall()

    def test_out_of_order_uninstall_keeps_outer_trace_live(self, sim):
        # the double-tap hazard: uninstalling the *inner* trace first
        # used to restore the pre-first-trace _deliver, silently
        # disconnecting the still-installed outer trace
        transport = make_world(sim)
        first = TransportTrace(transport, classify_by_first_byte)
        second = TransportTrace(transport, classify_by_first_byte)
        first.install()
        second.install()
        first.uninstall()  # out of order: first is below second
        transport.send("a", "b", b"\x01x")
        sim.run_until(10.0)
        assert first.captured == 0   # uninstalled, stops recording
        assert second.captured == 1  # still installed, still recording
        second.uninstall()

    def test_chain_unwinds_after_out_of_order_uninstall(self, sim):
        transport = make_world(sim)
        first = TransportTrace(transport, classify_by_first_byte)
        second = TransportTrace(transport, classify_by_first_byte)
        first.install()
        second.install()
        first.uninstall()
        second.uninstall()
        # both gone: the chain unwound all the way to the original
        assert getattr(transport._deliver, "_trace_owner", None) is None
        transport.send("a", "b", b"\x01x")
        sim.run_until(10.0)
        assert first.captured == 0 and second.captured == 0

    def test_three_deep_mixed_order(self, sim):
        transport = make_world(sim)
        traces = [TransportTrace(transport, classify_by_first_byte)
                  for _ in range(3)]
        for trace in traces:
            trace.install()
        traces[1].uninstall()
        transport.send("a", "b", b"\x01x")
        sim.run_until(10.0)
        assert [trace.captured for trace in traces] == [1, 0, 1]
        traces[2].uninstall()
        traces[0].uninstall()
        assert getattr(transport._deliver, "_trace_owner", None) is None

    def test_reinstall_after_uninstall(self, sim):
        transport = make_world(sim)
        trace = TransportTrace(transport, classify_by_first_byte)
        trace.install()
        trace.uninstall()
        trace.install()
        transport.send("a", "b", b"\x01x")
        sim.run_until(10.0)
        assert trace.captured == 1
        trace.uninstall()

    def test_double_install_is_noop(self, sim):
        transport = make_world(sim)
        trace = TransportTrace(transport, classify_by_first_byte)
        trace.install()
        trace.install()
        transport.send("a", "b", b"\x01x")
        sim.run_until(10.0)
        assert trace.captured == 1  # not captured twice through two taps
        trace.uninstall()
        assert getattr(transport._deliver, "_trace_owner", None) is None
