"""Tests for address modelling and classification."""

import ipaddress

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.addresses import (AddressAllocator, classify_address,
                                    is_loopback, is_private, is_reserved)
from repro.simnet.rng import SeededStream


class TestClassification:
    @pytest.mark.parametrize("address", [
        "10.0.0.1", "10.255.255.254", "172.16.0.1", "172.31.9.9",
        "192.168.1.1", "169.254.10.20",
    ])
    def test_private(self, address):
        assert is_private(address)
        assert classify_address(address) == "private"

    @pytest.mark.parametrize("address", [
        "172.15.0.1", "172.32.0.1", "11.0.0.1", "192.169.0.1", "8.8.8.8",
    ])
    def test_public(self, address):
        assert not is_private(address)
        assert classify_address(address) == "public"

    def test_loopback(self):
        assert is_loopback("127.0.0.1")
        assert classify_address("127.1.2.3") == "loopback"

    @pytest.mark.parametrize("address", ["0.1.2.3", "224.0.0.1", "240.0.0.1"])
    def test_reserved(self, address):
        assert is_reserved(address)
        assert classify_address(address) == "reserved"

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_classify_total_function(self, packed):
        address = str(ipaddress.ip_address(packed))
        assert classify_address(address) in {
            "private", "public", "loopback", "reserved"}


class TestAllocator:
    def make(self):
        return AddressAllocator(SeededStream(5, "addr"))

    def test_public_allocation(self):
        allocator = self.make()
        host = allocator.allocate_public()
        assert not host.behind_nat
        assert host.attachment == host.advertised
        assert classify_address(host.advertised) == "public"

    def test_nat_allocation(self):
        allocator = self.make()
        host = allocator.allocate(behind_nat=True)
        assert host.behind_nat
        assert classify_address(host.advertised) == "private"
        assert classify_address(host.attachment) == "public"

    def test_uniqueness(self):
        allocator = self.make()
        seen = set()
        for index in range(500):
            host = allocator.allocate(behind_nat=index % 3 == 0)
            assert host.attachment not in seen
            assert host.advertised not in seen
            seen.add(host.attachment)
            seen.add(host.advertised)

    def test_allocated_count(self):
        allocator = self.make()
        allocator.allocate(behind_nat=True)   # two addresses
        allocator.allocate(behind_nat=False)  # one address
        assert allocator.allocated_count == 3

    def test_private_pools_skew_to_192168(self):
        allocator = self.make()
        hosts = [allocator.allocate(behind_nat=True) for _ in range(300)]
        in_192168 = sum(1 for host in hosts
                        if host.advertised.startswith("192.168."))
        assert in_192168 > 120  # ~62% expected

    def test_advertised_class_helper(self):
        allocator = self.make()
        assert allocator.allocate(True).advertised_class() == "private"
        assert allocator.allocate(False).advertised_class() == "public"
