"""Allocation-lean delivery: slotted envelopes, args events, send_many."""

import sys

import pytest

from repro.simnet import fastpath
from repro.simnet.events import Event
from repro.simnet.kernel import Simulator
from repro.simnet.transport import (DELIVER_LABEL, Endpoint, Envelope,
                                    LatencyModel, Transport)


def _collector():
    received = []
    return received, received.append


class TestEnvelopeFootprint:
    def test_envelope_is_slotted(self):
        envelope = Envelope(src="a", dst="b", payload=b"x", sent_at=0.0)
        assert not hasattr(envelope, "__dict__")
        with pytest.raises(AttributeError):
            envelope.extra = 1

    def test_envelope_smaller_than_dict_backed_equivalent(self):
        class DictEnvelope:
            def __init__(self):
                self.src = "a"
                self.dst = "b"
                self.payload = b"x"
                self.sent_at = 0.0

        slotted = Envelope(src="a", dst="b", payload=b"x", sent_at=0.0)
        dict_backed = DictEnvelope()
        assert (sys.getsizeof(slotted)
                < sys.getsizeof(dict_backed)
                + sys.getsizeof(dict_backed.__dict__))

    def test_event_is_slotted(self):
        event = Event(time=1.0, seq=0, callback=lambda: None)
        assert not hasattr(event, "__dict__")

    def test_endpoint_identity_compared(self):
        first = Endpoint(endpoint_id="a", on_message=lambda e: None)
        second = Endpoint(endpoint_id="a", on_message=lambda e: None)
        assert first != second  # eq=False: identity, not field tuples
        assert first == first


class TestArgsEvents:
    def test_push_with_args_fires_callback_with_args(self):
        sim = Simulator(seed=1)
        seen = []
        sim.queue.push(1.0, lambda a, b: seen.append((a, b)),
                       "with-args", ("x", 42))
        sim.queue.push(2.0, lambda: seen.append("plain"))
        sim.run_until(10.0)
        assert seen == [("x", 42), "plain"]

    def test_args_default_is_empty(self):
        event = Event(time=0.0, seq=0, callback=lambda: None)
        assert event.args == ()


class TestSendMany:
    def _transport(self, seed=7, loss_rate=0.0):
        sim = Simulator(seed=seed)
        transport = Transport(sim, LatencyModel(), loss_rate=loss_rate)
        return sim, transport

    def test_send_many_delivers_to_every_destination(self):
        sim, transport = self._transport()
        received, on_message = _collector()
        transport.attach("src", lambda e: None)
        for peer in ("a", "b", "c"):
            transport.attach(peer, on_message)
        queued = transport.send_many("src", ("a", "b", "c"), b"payload")
        assert queued == 3
        sim.run_until(10.0)
        assert sorted(envelope.dst for envelope in received) == \
            ["a", "b", "c"]
        assert all(envelope.payload == b"payload" for envelope in received)

    def test_send_many_matches_per_send_loop_exactly(self):
        """Same seed, same traffic: send_many == N send calls, including
        the RNG draw order (loss then latency per destination)."""
        def run(use_many):
            sim, transport = self._transport(seed=11, loss_rate=0.3)
            log = []
            transport.attach("src", lambda e: None)
            for peer in ("a", "b", "c", "d"):
                transport.attach(
                    peer, lambda e: log.append((sim.now, e.dst)))
            if use_many:
                transport.send_many("src", ("a", "b", "c", "d"), b"pp")
            else:
                for peer in ("a", "b", "c", "d"):
                    transport.send("src", peer, b"pp")
            sim.run_until(10.0)
            return log, transport.drop_causes.copy()

        assert run(True) == run(False)

    def test_send_many_counts_drops(self):
        sim, transport = self._transport()
        transport.attach("src", lambda e: None)
        transport.attach("up", lambda e: None)
        queued = transport.send_many("src", ("up", "missing"), b"x")
        assert queued == 1
        assert transport.drop_causes["unknown-dst"] == 1

    def test_deliveries_use_the_constant_label(self):
        sim, transport = self._transport()
        transport.attach("src", lambda e: None)
        transport.attach("dst", lambda e: None)
        transport.send("src", "dst", b"x")
        labels = {entry[2].label for entry in sim.queue.iter_entries()}
        assert labels == {DELIVER_LABEL}
        assert DELIVER_LABEL == "deliver"  # bounded, population-free

    def test_fast_and_slow_paths_schedule_identically(self):
        def run():
            sim, transport = self._transport(seed=3)
            received, on_message = _collector()
            transport.attach("src", lambda e: None)
            transport.attach("dst", on_message)
            transport.send_many("src", ("dst",), b"hello")
            sim.run_until(10.0)
            return [(envelope.dst, envelope.payload, envelope.sent_at)
                    for envelope in received]

        fast = run()
        previous = fastpath.set_slow_path(True)
        try:
            slow = run()
        finally:
            fastpath.set_slow_path(previous)
        assert fast == slow

    def test_late_installed_tap_sees_in_flight_messages(self):
        """A delivery tap installed while a fast-path message is in
        flight must still intercept it (the closure used to late-bind
        _deliver; _dispatch must too)."""
        sim, transport = self._transport()
        received, on_message = _collector()
        transport.attach("src", lambda e: None)
        transport.attach("dst", on_message)
        transport.send("src", "dst", b"x")

        tapped = []
        original = transport._deliver

        def tap(envelope):
            tapped.append(envelope)
            original(envelope)

        transport._deliver = tap
        sim.run_until(10.0)
        assert len(tapped) == 1 and len(received) == 1


class TestSlowPathFlag:
    def test_flag_round_trip(self):
        assert not fastpath.slow_path_enabled()
        previous = fastpath.set_slow_path(True)
        assert previous is False
        assert fastpath.slow_path_enabled()
        fastpath.set_slow_path(False)
        assert not fastpath.slow_path_enabled()

    def test_context_manager_restores(self):
        with fastpath.use_slow_path():
            assert fastpath.slow_path_enabled()
        assert not fastpath.slow_path_enabled()

    def test_transport_samples_flag_at_construction(self):
        with fastpath.use_slow_path():
            sim = Simulator(seed=1)
            transport = Transport(sim)
        assert transport._slow is True
