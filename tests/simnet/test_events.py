"""Tests for the event queue."""

import pytest

from repro.simnet.events import Event, EventQueue


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, lambda: order.append("c"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(2.0, lambda: order.append("b"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        queue = EventQueue()
        order = []
        for label in "abcde":
            queue.push(1.0, lambda label=label: order.append(label))
        while (event := queue.pop()) is not None:
            event.callback()
        assert order == list("abcde")

    def test_len_tracks_live_events(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        event.cancel()
        queue.note_cancelled()
        assert len(queue) == 1

    def test_tier_split_is_all_near(self):
        # the heap has no wheel: near_depth mirrors the live depth and
        # wheel_depth is 0, so near + wheel == depth holds on this twin
        # exactly as it does on the tiered queue
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(1_000_000.0, lambda: None)  # far future: still near
        assert queue.near_depth == 2
        assert queue.wheel_depth == 0
        assert queue.near_depth + queue.wheel_depth == len(queue)
        event.cancel()
        queue.note_cancelled()
        assert queue.near_depth == 1
        assert queue.near_depth + queue.wheel_depth == len(queue)

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append(1))
        queue.push(2.0, lambda: fired.append(2))
        event.cancel()
        queue.note_cancelled()
        while (item := queue.pop()) is not None:
            item.callback()
        assert fired == [2]

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        first.cancel()
        queue.note_cancelled()
        assert queue.peek_time() == 5.0

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_label_preserved(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, label="tick")
        assert event.label == "tick"

    def test_cancel_method_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(event)
        queue.cancel(event)  # double cancel must not corrupt the count
        assert len(queue) == 1
        assert queue.peek_time() == 2.0

    def test_peek_and_pop_agree_on_cancelled_head(self):
        # peek must never report the time of a cancelled event that pop
        # would then silently discard
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(first)
        peeked = queue.peek_time()
        popped = queue.pop()
        assert peeked == 2.0
        assert popped is not None and popped.time == peeked

    def test_pop_keeps_len_consistent_with_cancellations(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(10)]
        for event in events[::2]:
            queue.cancel(event)
        survivors = []
        while (event := queue.pop()) is not None:
            survivors.append(event.time)
        assert survivors == [1.0, 3.0, 5.0, 7.0, 9.0]
        assert len(queue) == 0

    def test_event_uses_slots(self):
        event = Event(time=1.0, seq=0, callback=lambda: None)
        assert not hasattr(event, "__dict__")
        with pytest.raises(AttributeError):
            event.arbitrary = 1


class TestCompaction:
    def test_heavy_cancellation_triggers_compaction(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(256)]
        for event in events[: 200]:
            queue.cancel(event)
        assert queue.compactions >= 1
        assert len(queue) == 56
        assert len(queue._heap) < 100  # dead weight actually removed

    def test_compaction_preserves_pop_order(self):
        queue = EventQueue()
        events = [queue.push(float(i % 7), lambda: None)
                  for i in range(300)]
        for event in events[::3] + events[1::3]:
            queue.cancel(event)
        expected = sorted((e.time, e.seq) for e in events[2::3])
        popped = []
        while (event := queue.pop()) is not None:
            popped.append((event.time, event.seq))
        assert popped == expected

    def test_small_heaps_never_compact(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(20)]
        for event in events:
            queue.cancel(event)
        assert queue.compactions == 0
        assert queue.pop() is None
