"""Tests for the event queue."""

import pytest

from repro.simnet.events import EventQueue


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, lambda: order.append("c"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(2.0, lambda: order.append("b"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        queue = EventQueue()
        order = []
        for label in "abcde":
            queue.push(1.0, lambda label=label: order.append(label))
        while (event := queue.pop()) is not None:
            event.callback()
        assert order == list("abcde")

    def test_len_tracks_live_events(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        event.cancel()
        queue.note_cancelled()
        assert len(queue) == 1

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append(1))
        queue.push(2.0, lambda: fired.append(2))
        event.cancel()
        queue.note_cancelled()
        while (item := queue.pop()) is not None:
            item.callback()
        assert fired == [2]

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        first.cancel()
        queue.note_cancelled()
        assert queue.peek_time() == 5.0

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_label_preserved(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, label="tick")
        assert event.label == "tick"
