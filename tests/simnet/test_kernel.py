"""Tests for the simulation kernel."""

import pytest

from repro.simnet.kernel import Simulator


class TestScheduling:
    def test_after_advances_clock(self, sim):
        times = []
        sim.after(5.0, lambda: times.append(sim.now))
        sim.run_until(10.0)
        assert times == [5.0]
        assert sim.now == 10.0  # clock reaches the horizon

    def test_at_absolute_time(self, sim):
        fired = []
        sim.at(3.0, lambda: fired.append(sim.now))
        sim.run_until(3.0)
        assert fired == [3.0]

    def test_cannot_schedule_in_past(self, sim):
        sim.after(1.0, lambda: None)
        sim.run_until(2.0)
        with pytest.raises(ValueError):
            sim.at(1.5, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.after(-1.0, lambda: None)

    def test_events_beyond_horizon_stay_queued(self, sim):
        fired = []
        sim.after(5.0, lambda: fired.append("early"))
        sim.after(50.0, lambda: fired.append("late"))
        sim.run_until(10.0)
        assert fired == ["early"]
        sim.run_until(100.0)
        assert fired == ["early", "late"]

    def test_cancel(self, sim):
        fired = []
        event = sim.after(5.0, lambda: fired.append(1))
        sim.cancel(event)
        sim.cancel(event)  # double cancel is safe
        sim.run_until(10.0)
        assert fired == []

    def test_run_until_returns_processed_count(self, sim):
        for _ in range(4):
            sim.after(1.0, lambda: None)
        assert sim.run_until(2.0) == 4

    def test_max_events(self, sim):
        for _ in range(10):
            sim.after(1.0, lambda: None)
        processed = sim.run_until(2.0, max_events=3)
        assert processed == 3

    def test_halt_stops_loop(self, sim):
        fired = []
        sim.after(1.0, lambda: (fired.append(1), sim.halt()))
        sim.after(2.0, lambda: fired.append(2))
        sim.run_until(10.0)
        assert fired == [1]

    def test_nested_scheduling_inside_event(self, sim):
        order = []
        def first():
            order.append("first")
            sim.after(1.0, lambda: order.append("second"))
        sim.after(1.0, first)
        sim.run_until(5.0)
        assert order == ["first", "second"]

    def test_event_scheduled_at_horizon_during_drain_still_runs(self, sim):
        # regression: the last event's callback schedules another event
        # at exactly end_time; the drain must process it, and the final
        # "advance to horizon" check must see the queue state from
        # *after* the loop, not a stale peek
        order = []

        def last():
            order.append("last")
            sim.at(10.0, lambda: order.append("same-time"))

        sim.at(10.0, last)
        processed = sim.run_until(10.0)
        assert order == ["last", "same-time"]
        assert processed == 2
        assert sim.now == 10.0

    def test_clock_not_advanced_while_events_remain_before_horizon(self, sim):
        fired = []
        sim.at(5.0, lambda: fired.append(1))
        sim.at(6.0, lambda: fired.append(2))
        sim.run_until(10.0, max_events=1)
        # max_events stopped the drain with work left before the
        # horizon: the clock must stay at the last processed event
        assert fired == [1]
        assert sim.now == 5.0
        sim.run_until(10.0)
        assert fired == [1, 2]
        assert sim.now == 10.0


class TestEvery:
    def test_periodic_without_jitter(self, sim):
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now))
        sim.run_until(35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_periodic_until(self, sim):
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now), until=25.0)
        sim.run_until(100.0)
        assert ticks == [10.0, 20.0]

    def test_jitter_perturbs_but_keeps_cadence(self, sim):
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now),
                  jitter=sim.stream("jitter"))
        sim.run_until(100.0)
        assert 8 <= len(ticks) <= 12
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert all(8.9 <= gap <= 11.1 for gap in gaps)

    def test_non_positive_interval_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.every(0.0, lambda: None)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def run(seed):
            sim = Simulator(seed=seed)
            trace = []
            stream = sim.stream("t")
            def tick():
                trace.append((round(sim.now, 6), stream.randint(0, 1000)))
            sim.every(3.0, tick, jitter=sim.stream("jitter"))
            sim.run_until(100.0)
            return trace
        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_events_processed_accumulates(self, sim):
        sim.after(1.0, lambda: None)
        sim.run_until(2.0)
        sim.after(1.0, lambda: None)
        sim.run_until(5.0)
        assert sim.events_processed == 2
