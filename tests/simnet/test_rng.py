"""Tests for deterministic random streams."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.rng import SeededStream, StreamRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_differs_by_name(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_differs_by_master(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_nearby_masters_uncorrelated(self):
        seeds = {derive_seed(master, "x") for master in range(100)}
        assert len(seeds) == 100


class TestSeededStream:
    def test_same_seed_same_sequence(self):
        a = SeededStream(7, "s")
        b = SeededStream(7, "s")
        assert [a.random() for _ in range(20)] == [
            b.random() for _ in range(20)]

    def test_streams_independent(self):
        # drawing extra values from one stream must not shift another
        registry_a = StreamRegistry(7)
        registry_b = StreamRegistry(7)
        registry_a.stream("x").random()  # extra draw on x only in a
        assert (registry_a.stream("y").random()
                == registry_b.stream("y").random())

    def test_randint_bounds(self):
        stream = SeededStream(1, "r")
        values = [stream.randint(3, 5) for _ in range(200)]
        assert set(values) <= {3, 4, 5}
        assert set(values) == {3, 4, 5}  # all values reachable

    def test_uniform_bounds(self):
        stream = SeededStream(1, "u")
        for _ in range(100):
            value = stream.uniform(2.0, 3.0)
            assert 2.0 <= value < 3.0001

    def test_bernoulli_extremes(self):
        stream = SeededStream(1, "b")
        assert not any(stream.bernoulli(0.0) for _ in range(50))
        assert all(stream.bernoulli(1.0) for _ in range(50))

    def test_bytes_length_and_determinism(self):
        a = SeededStream(3, "bytes")
        b = SeededStream(3, "bytes")
        assert a.bytes(16) == b.bytes(16)
        assert len(a.bytes(5)) == 5
        assert a.bytes(0) == b""

    def test_geometric_mean_close(self):
        stream = SeededStream(5, "g")
        draws = [stream.geometric(0.25) for _ in range(4000)]
        mean = sum(draws) / len(draws)
        assert 3.5 < mean < 4.5  # E = 1/p = 4

    def test_geometric_rejects_bad_p(self):
        stream = SeededStream(5, "g")
        with pytest.raises(ValueError):
            stream.geometric(0.0)
        with pytest.raises(ValueError):
            stream.geometric(1.5)

    def test_shuffle_permutes(self):
        stream = SeededStream(5, "sh")
        items = list(range(30))
        shuffled = list(items)
        stream.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_sample_without_replacement(self):
        stream = SeededStream(5, "sa")
        picked = stream.sample(list(range(10)), 4)
        assert len(picked) == len(set(picked)) == 4

    @given(st.integers(min_value=1, max_value=50),
           st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=25, deadline=None)
    def test_zipf_rank_in_range(self, n, alpha):
        stream = SeededStream(9, f"z{n}")
        for _ in range(10):
            assert 1 <= stream.zipf_rank(n, alpha) <= n

    def test_zipf_rank_skews_low(self):
        stream = SeededStream(9, "zipf")
        draws = [stream.zipf_rank(100, 1.0) for _ in range(2000)]
        assert draws.count(1) > draws.count(50)


class TestStreamRegistry:
    def test_same_name_same_object(self):
        registry = StreamRegistry(1)
        assert registry.stream("a") is registry.stream("a")

    def test_names_sorted(self):
        registry = StreamRegistry(1)
        registry.stream("b")
        registry.stream("a")
        assert registry.names() == ["a", "b"]
