"""Fixtures for OpenFT tests: a small hand-wired overlay."""

import pytest

from repro.files.catalog import CatalogConfig, ContentCatalog
from repro.files.library import SharedFile, SharedLibrary
from repro.malware.corpus import openft_strains
from repro.malware.infection import HostInfection
from repro.openft.constants import CLASS_SEARCH, CLASS_USER
from repro.openft.network import OpenFTNetwork
from repro.openft.nodes import OpenFTNode
from repro.simnet.addresses import AddressAllocator
from repro.simnet.transport import Transport


class SmallFTWorld:
    """2 search nodes, 8 users (user0 infected with the top strain)."""

    def __init__(self, sim):
        self.sim = sim
        self.transport = Transport(sim)
        self.allocator = AddressAllocator(sim.stream("addr"))
        self.catalog = ContentCatalog(CatalogConfig(works=100),
                                      sim.stream("catalog"))
        self.strains = openft_strains()
        stream = sim.stream("world")

        self.search_nodes = [
            OpenFTNode(sim, self.transport, f"search{i}",
                       self.allocator.allocate(),
                       klass=CLASS_SEARCH | CLASS_USER, max_children=100)
            for i in range(2)
        ]
        self.users = []
        for i in range(8):
            library = SharedLibrary()
            for _ in range(stream.randint(3, 10)):
                version = self.catalog.sample_version(stream)
                library.add(SharedFile.make(
                    self.catalog.decorate_filename(version), version.size,
                    version.extension, version.blob))
            infection = None
            if i == 0:
                infection = HostInfection()
                infection.infect(self.strains[0], library, stream,
                                 resident_copies=10)
            self.users.append(OpenFTNode(
                sim, self.transport, f"user{i}",
                self.allocator.allocate(behind_nat=(i == 1)),
                klass=CLASS_USER, library=library, infection=infection))

        self.network = OpenFTNetwork(sim, self.transport, self.search_nodes,
                                     self.users, self.strains)
        self.network.wire(sim.stream("topo"), parents_per_user=2)
        sim.run_until(120.0)  # drain adoptions + share syncs

        self.crawler = self.network.create_crawler(
            "crawler", self.allocator.allocate())
        sim.run_until(sim.now + 60.0)
        self.results = []
        self.crawler.on_search_result = self.results.append

    def search(self, query, horizon=60.0):
        self.results.clear()
        search_id = self.crawler.originate_search(query)
        self.sim.run_until(self.sim.now + horizon)
        real = [r for r in self.results if not r.is_end_marker]
        return search_id, real


@pytest.fixture()
def ft_world(sim):
    return SmallFTWorld(sim)
