"""Tests for the OpenFT packet codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.openft.packets import (AddShare, BrowseRequest, BrowseResponse,
                                  ChildRequest, ChildResponse,
                                  NodeInfoRequest, NodeInfoResponse,
                                  PacketError, PushRequest, RemShare,
                                  SearchRequest, SearchResponse,
                                  ShareSyncEnd, StatsRequest, StatsResponse,
                                  VersionRequest, VersionResponse,
                                  decode_packet, encode_packet)

MD5 = "0123456789abcdef0123456789abcdef"


def roundtrip(packet):
    return decode_packet(encode_packet(packet))


class TestRoundtrips:
    @pytest.mark.parametrize("packet", [
        VersionRequest(),
        VersionResponse(0, 2, 1, 6),
        NodeInfoRequest(),
        NodeInfoResponse(klass=3, port=1215, http_port=1216, alias="node"),
        ChildRequest(),
        ChildResponse(accepted=True),
        ChildResponse(accepted=False),
        AddShare(size=1000, md5=MD5, filename="file_a.exe"),
        RemShare(md5=MD5),
        ShareSyncEnd(),
        StatsRequest(),
        StatsResponse(users=10, shares=500, gigabytes=3),
        SearchRequest(search_id=99, ttl=1, query="photoshop crack"),
        SearchResponse(search_id=99, host="10.0.0.1", port=1215,
                       http_port=1216, availability=2, size=12345,
                       md5=MD5, filename="result.zip"),
        BrowseRequest(browse_id=7),
        BrowseResponse(browse_id=7, size=55, md5=MD5, filename="b.exe"),
        PushRequest(host="8.8.8.8", port=1215, md5=MD5),
    ])
    def test_roundtrip(self, packet):
        assert roundtrip(packet) == packet

    def test_end_markers(self):
        end = SearchResponse.end_marker(42)
        assert end.is_end_marker
        assert roundtrip(end) == end
        browse_end = BrowseResponse.end_marker(42)
        assert browse_end.is_end_marker
        assert roundtrip(browse_end) == browse_end

    def test_non_end_marker(self):
        response = SearchResponse(search_id=1, host="1.2.3.4", port=1,
                                  http_port=2, availability=0, size=1,
                                  md5=MD5, filename="x")
        assert not response.is_end_marker


class TestNodeList:
    def test_roundtrip(self):
        from repro.openft.packets import NodeListEntry, NodeListResponse
        response = NodeListResponse(entries=(
            NodeListEntry(host="1.2.3.4", port=1215, klass=3),
            NodeListEntry(host="10.0.0.9", port=1216, klass=1),
        ))
        assert roundtrip(response) == response

    def test_empty_list(self):
        from repro.openft.packets import NodeListResponse
        assert roundtrip(NodeListResponse(entries=())).entries == ()

    def test_request_roundtrip(self):
        from repro.openft.packets import NodeListRequest
        assert roundtrip(NodeListRequest()) == NodeListRequest()

    def test_truncated_entry_rejected(self):
        from repro.openft.constants import FT_NODELIST_RESPONSE
        import struct
        payload = struct.pack(">H", 2) + b"\x01\x02\x03\x04\x00\x01\x00\x03"
        raw = struct.pack(">HH", len(payload), FT_NODELIST_RESPONSE) + payload
        with pytest.raises(PacketError):
            decode_packet(raw)


class TestErrors:
    def test_short_packet(self):
        with pytest.raises(PacketError):
            decode_packet(b"\x00")

    def test_length_mismatch(self):
        raw = encode_packet(ChildRequest())
        with pytest.raises(PacketError):
            decode_packet(raw + b"x")

    def test_unknown_command(self):
        with pytest.raises(PacketError):
            decode_packet(b"\x00\x00\xff\xff")

    def test_bad_md5_length(self):
        with pytest.raises(PacketError):
            encode_packet(AddShare(size=1, md5="abcd", filename="x"))

    def test_nul_in_string_rejected(self):
        with pytest.raises(PacketError):
            encode_packet(SearchRequest(search_id=1, ttl=1,
                                        query="bad\x00query"))

    def test_size_clamped(self):
        share = AddShare(size=2**40, md5=MD5, filename="big")
        assert roundtrip(share).size == 0xFFFFFFFF


@given(query=st.text(
    alphabet=st.characters(blacklist_characters="\x00",
                           blacklist_categories=("Cs",)),
    max_size=50),
    search_id=st.integers(min_value=0, max_value=2**32 - 1),
    ttl=st.integers(min_value=0, max_value=65535))
@settings(max_examples=80, deadline=None)
def test_search_request_roundtrip_property(query, search_id, ttl):
    packet = SearchRequest(search_id=search_id, ttl=ttl, query=query)
    assert roundtrip(packet) == packet


@given(filename=st.text(
    alphabet=st.characters(blacklist_characters="\x00",
                           blacklist_categories=("Cs",)),
    min_size=1, max_size=40),
    size=st.integers(min_value=0, max_value=0xFFFFFFFF))
@settings(max_examples=60, deadline=None)
def test_search_response_roundtrip_property(filename, size):
    packet = SearchResponse(search_id=1, host="172.16.4.5", port=1215,
                            http_port=1216, availability=1, size=size,
                            md5=MD5, filename=filename)
    assert roundtrip(packet) == packet
