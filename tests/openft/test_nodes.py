"""Behavioural tests for OpenFT nodes."""

from repro.files.names import tokenize
from repro.openft.packets import BrowseResponse


class TestAdoption:
    def test_users_adopted_by_parents(self, ft_world):
        for user in ft_world.users:
            assert user.parent_ids, f"{user.endpoint_id} has no parents"
            for parent_id in user.parent_ids:
                parent = ft_world.network.nodes[parent_id]
                assert user.endpoint_id in parent._children

    def test_shares_indexed_at_parents(self, ft_world):
        user = ft_world.users[2]
        parent = ft_world.network.nodes[user.parent_ids[0]]
        indexed = [key for key in parent._records
                   if key[0] == user.endpoint_id]
        assert len(indexed) == len(user.library)

    def test_capacity_limit_respected(self, sim):
        from repro.openft.constants import CLASS_SEARCH, CLASS_USER
        from repro.openft.nodes import OpenFTNode
        from repro.simnet.addresses import AddressAllocator
        from repro.simnet.transport import Transport
        transport = Transport(sim)
        allocator = AddressAllocator(sim.stream("a"))
        parent = OpenFTNode(sim, transport, "parent", allocator.allocate(),
                            klass=CLASS_SEARCH, max_children=2)
        users = [OpenFTNode(sim, transport, f"u{i}", allocator.allocate(),
                            klass=CLASS_USER) for i in range(4)]
        for user in users:
            user.request_parent("parent")
        sim.run_until(60.0)
        adopted = [user for user in users if user.parent_ids]
        assert len(adopted) == 2


class TestSearch:
    def test_search_returns_matching_shares(self, ft_world):
        user = ft_world.users[3]
        shared = next(iter(user.library))
        query = " ".join(sorted(shared.tokens)[:2])
        _, results = ft_world.search(query)
        md5s = {result.md5 for result in results}
        assert shared.blob.md5_hex() in md5s

    def test_results_carry_sharer_address(self, ft_world):
        natted = ft_world.users[1]
        shared = next(iter(natted.library))
        query = " ".join(sorted(shared.tokens)[:2])
        _, results = ft_world.search(query)
        hosts = {result.host for result in results
                 if result.md5 == shared.blob.md5_hex()}
        assert natted.address.advertised in hosts

    def test_bait_copies_surface_in_popular_searches(self, ft_world):
        # some popular query must surface the infected user's bait copies
        from repro.files.names import POPULAR_QUERIES
        from repro.malware.infection import strain_body_blob
        body_md5 = strain_body_blob(ft_world.strains[0]).md5_hex()
        seen = set()
        for query in POPULAR_QUERIES:
            _, results = ft_world.search(query)
            seen.update(result.md5 for result in results)
        assert body_md5 in seen

    def test_no_match_returns_only_end_markers(self, ft_world):
        _, results = ft_world.search("zebra quantum xylophone")
        assert results == []

    def test_end_markers_arrive(self, ft_world):
        ft_world.results.clear()
        ft_world.crawler.originate_search("free music")
        ft_world.sim.run_until(ft_world.sim.now + 60.0)
        markers = [r for r in ft_world.results if r.is_end_marker]
        assert markers  # at least the parents' local end markers

    def test_search_result_tokens_match_query(self, ft_world):
        _, results = ft_world.search("free music")
        for result in results:
            assert {"free", "music"} <= tokenize(result.filename)


class TestShareLifecycle:
    def test_drop_child_removes_index(self, ft_world):
        user = ft_world.users[3]
        parent = ft_world.network.nodes[user.parent_ids[0]]
        parent.drop_child(user.endpoint_id)
        indexed = [key for key in parent._records
                   if key[0] == user.endpoint_id]
        assert indexed == []

    def test_remshare_removes_all_names_of_content(self, sim, ft_world):
        from repro.openft.packets import RemShare
        infected = ft_world.users[0]
        parent = ft_world.network.nodes[infected.parent_ids[0]]
        from repro.malware.infection import strain_body_blob
        md5 = strain_body_blob(ft_world.strains[0]).md5_hex()
        before = [key for key in parent._records
                  if key[0] == infected.endpoint_id and key[1] == md5]
        assert len(before) > 1  # multiple bait names, same content
        ft_world.transport.send(infected.endpoint_id, parent.endpoint_id,
                                __import__("repro.openft.packets",
                                           fromlist=["encode_packet"]
                                           ).encode_packet(RemShare(md5=md5)))
        sim.run_until(sim.now + 30.0)
        after = [key for key in parent._records
                 if key[0] == infected.endpoint_id and key[1] == md5]
        assert after == []

    def test_stale_index_serves_offline_host(self, ft_world):
        user = ft_world.users[3]
        shared = next(iter(user.library))
        ft_world.transport.set_online(user.endpoint_id, False)
        query = " ".join(sorted(shared.tokens)[:2])
        _, results = ft_world.search(query)
        # the index still answers, though the host is gone
        assert any(result.md5 == shared.blob.md5_hex()
                   for result in results)


class TestBrowse:
    def test_browse_lists_shares(self, ft_world):
        user = ft_world.users[4]
        listings = []
        ft_world.crawler.on_browse_result = listings.append
        ft_world.crawler.originate_browse(user.endpoint_id)
        ft_world.sim.run_until(ft_world.sim.now + 30.0)
        real = [item for item in listings if not item.is_end_marker]
        assert len(real) == len(user.library)
        assert any(item.is_end_marker for item in listings)


class TestNodeInfo:
    def test_nodeinfo_roundtrip(self, ft_world):
        info = ft_world.search_nodes[0].node_info()
        assert info.klass & 0x02  # SEARCH class
        assert info.port == 1215


class TestStats:
    def test_crawler_collects_stats(self, ft_world):
        collected = []
        ft_world.crawler.on_stats = (
            lambda src, stats: collected.append((src, stats)))
        for node in ft_world.search_nodes:
            ft_world.crawler.request_stats(node.endpoint_id)
        ft_world.sim.run_until(ft_world.sim.now + 30.0)
        assert len(collected) == len(ft_world.search_nodes)
        total_children = sum(stats.users for _, stats in collected)
        # every user has 2 parents among 2 search nodes (plus the crawler)
        assert total_children >= 2 * len(ft_world.users)
        assert all(stats.shares > 0 for _, stats in collected)

    def test_stats_reflect_dropped_children(self, ft_world):
        parent = ft_world.search_nodes[0]
        user = ft_world.users[3]
        before = len(parent._children)
        parent.drop_child(user.endpoint_id)
        collected = []
        ft_world.crawler.on_stats = (
            lambda src, stats: collected.append(stats))
        ft_world.crawler.request_stats(parent.endpoint_id)
        ft_world.sim.run_until(ft_world.sim.now + 30.0)
        assert collected[0].users == before - 1
