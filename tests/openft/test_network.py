"""Tests for the OpenFT network facade."""


class TestLookup:
    def test_node_by_host(self, ft_world):
        user = ft_world.users[2]
        assert ft_world.network.node_by_host(
            user.address.advertised) is user

    def test_unknown_host(self, ft_world):
        assert ft_world.network.node_by_host("203.0.113.99") is None

    def test_online_count(self, ft_world):
        total = len(ft_world.network.nodes)
        assert ft_world.network.online_count() == total
        ft_world.transport.set_online("user5", False)
        assert ft_world.network.online_count() == total - 1

    def test_desired_parents_recorded(self, ft_world):
        for user in ft_world.users:
            desired = ft_world.network.desired_parents[user.endpoint_id]
            assert len(desired) == 2


class TestFetch:
    def test_fetch_shared_file(self, ft_world):
        user = ft_world.users[2]
        shared = next(iter(user.library))
        blob = ft_world.network.fetch(user.address.advertised,
                                      shared.blob.md5_hex())
        assert blob is shared.blob

    def test_fetch_offline_fails(self, ft_world):
        user = ft_world.users[2]
        shared = next(iter(user.library))
        ft_world.transport.set_online(user.endpoint_id, False)
        assert ft_world.network.fetch(user.address.advertised,
                                      shared.blob.md5_hex()) is None

    def test_fetch_unknown_md5_fails(self, ft_world):
        user = ft_world.users[2]
        assert ft_world.network.fetch(user.address.advertised,
                                      "f" * 32) is None

    def test_fetch_malware_body_from_infected(self, ft_world):
        from repro.malware.infection import strain_body_blob
        infected = ft_world.users[0]
        body = strain_body_blob(ft_world.strains[0])
        blob = ft_world.network.fetch(infected.address.advertised,
                                      body.md5_hex())
        assert blob is not None
        assert blob.contains_marker(ft_world.strains[0].marker)

    def test_fetch_malware_from_clean_host_fails(self, ft_world):
        from repro.malware.infection import strain_body_blob
        clean = ft_world.users[4]
        body = strain_body_blob(ft_world.strains[0])
        assert ft_world.network.fetch(clean.address.advertised,
                                      body.md5_hex()) is None


class TestPushRelay:
    def test_natted_fetch_requires_requester(self, ft_world):
        natted = ft_world.users[1]
        shared = next(iter(natted.library))
        assert ft_world.network.fetch(natted.address.advertised,
                                      shared.blob.md5_hex()) is None

    def test_natted_fetch_via_relay(self, ft_world):
        natted = ft_world.users[1]
        shared = next(iter(natted.library))
        blob = ft_world.network.fetch(natted.address.advertised,
                                      shared.blob.md5_hex(),
                                      requester_id="crawler")
        assert blob is shared.blob

    def test_relay_fails_when_parents_offline(self, ft_world):
        natted = ft_world.users[1]
        shared = next(iter(natted.library))
        for parent_id in natted.parent_ids:
            ft_world.transport.set_online(parent_id, False)
        assert ft_world.network.fetch(natted.address.advertised,
                                      shared.blob.md5_hex(),
                                      requester_id="crawler") is None

    def test_relay_fails_after_parent_dropped_child(self, ft_world):
        natted = ft_world.users[1]
        shared = next(iter(natted.library))
        for parent_id in natted.parent_ids:
            ft_world.network.nodes[parent_id].drop_child(
                natted.endpoint_id)
        assert not ft_world.network.relay_push("crawler", natted,
                                               shared.blob.md5_hex())


class TestCrawler:
    def test_crawler_adopted(self, ft_world):
        assert ft_world.crawler.parent_ids
        for parent_id in ft_world.crawler.parent_ids:
            parent = ft_world.network.nodes[parent_id]
            assert "crawler" in parent._children


class TestNodeListDiscovery:
    def test_nodelist_answered(self, ft_world):
        lists = []
        ft_world.crawler.on_nodelist = (
            lambda src, response: lists.append(response))
        ft_world.crawler.request_nodelist(
            ft_world.search_nodes[0].endpoint_id)
        ft_world.sim.run_until(ft_world.sim.now + 30.0)
        assert lists
        hosts = {entry.host for entry in lists[0].entries}
        # the seed advertises itself and its mesh peers
        for node in ft_world.search_nodes:
            assert node.advertised_address in hosts

    def test_bootstrap_crawler_adopts_via_discovery(self, ft_world):
        crawler = ft_world.network.bootstrap_crawler(
            "crawler2", ft_world.allocator.allocate())
        ft_world.sim.run_until(ft_world.sim.now + 60.0)
        assert crawler.parent_ids
        for parent_id in crawler.parent_ids:
            parent = ft_world.network.nodes[parent_id]
            assert parent.is_search_node
            assert "crawler2" in parent._children

    def test_bootstrapped_crawler_searches(self, ft_world):
        crawler = ft_world.network.bootstrap_crawler(
            "crawler3", ft_world.allocator.allocate())
        ft_world.sim.run_until(ft_world.sim.now + 60.0)
        results = []
        crawler.on_search_result = results.append
        user = ft_world.users[3]
        shared = next(iter(user.library))
        crawler.originate_search(" ".join(sorted(shared.tokens)[:2]))
        ft_world.sim.run_until(ft_world.sim.now + 60.0)
        real = [r for r in results if not r.is_end_marker]
        assert any(r.md5 == shared.blob.md5_hex() for r in real)
