"""Lazy header parse + ttl splicing for the OpenFT data-plane fast path."""

import dataclasses
import struct

import pytest

from repro.openft.packets import (PACKET_HEADER_LENGTH, SEARCH_ID_OFFSET,
                                  SEARCH_TTL_OFFSET, PacketError,
                                  SearchRequest, SearchResponse,
                                  decode_packet, encode_packet,
                                  parse_packet_header, patch_search_ttl)

MD5 = "0123456789abcdef0123456789abcdef"


def _search(ttl=3):
    return SearchRequest(search_id=77, ttl=ttl, query="installer keygen")


class TestParsePacketHeader:
    def test_returns_command_and_length(self):
        raw = encode_packet(_search())
        command, length = parse_packet_header(raw)
        assert command == _search().command
        assert length == len(raw) - PACKET_HEADER_LENGTH

    @pytest.mark.parametrize("raw", [
        b"", b"\x00",
        encode_packet(_search())[:-1],   # truncated payload
        encode_packet(_search()) + b"x",  # trailing junk
        b"\x00\x00\xff\xff",             # unknown command
    ])
    def test_rejects_what_decode_packet_rejects(self, raw):
        with pytest.raises(PacketError):
            decode_packet(raw)
        with pytest.raises(PacketError):
            parse_packet_header(raw)

    def test_accepts_memoryview_without_materializing(self):
        raw = encode_packet(_search())
        view = memoryview(b"xx" + raw + b"yy")[2:2 + len(raw)]
        assert parse_packet_header(view) == parse_packet_header(raw)

    def test_search_id_lives_at_fixed_offset(self):
        raw = encode_packet(_search())
        search_id = struct.unpack_from(">I", raw, SEARCH_ID_OFFSET)[0]
        assert search_id == 77
        response = SearchResponse(search_id=123, host="10.0.0.9", port=1215,
                                  http_port=1216, availability=1, size=9,
                                  md5=MD5, filename="r.exe")
        raw = encode_packet(response)
        assert struct.unpack_from(">I", raw, SEARCH_ID_OFFSET)[0] == 123


class TestPatchSearchTtl:
    def test_patch_equals_reencode(self):
        raw = encode_packet(_search(ttl=3))
        for ttl in (2, 1, 0):
            expected = encode_packet(dataclasses.replace(_search(), ttl=ttl))
            assert patch_search_ttl(raw, ttl) == expected

    def test_patch_touches_only_the_ttl_bytes(self):
        raw = encode_packet(_search(ttl=5))
        patched = patch_search_ttl(raw, 4)
        assert patched[:SEARCH_TTL_OFFSET] == raw[:SEARCH_TTL_OFFSET]
        assert patched[SEARCH_TTL_OFFSET + 2:] == raw[SEARCH_TTL_OFFSET + 2:]
        assert decode_packet(patched).ttl == 4

    def test_accepts_memoryview_without_materializing(self):
        raw = encode_packet(_search(ttl=5))
        view = memoryview(b"xx" + raw + b"yy")[2:2 + len(raw)]
        assert patch_search_ttl(view, 4) == patch_search_ttl(raw, 4)
        assert isinstance(patch_search_ttl(view, 4), bytes)

    def test_out_of_range_ttl_rejected(self):
        raw = encode_packet(_search(ttl=5))
        with pytest.raises(struct.error):
            patch_search_ttl(raw, 0x10000)
