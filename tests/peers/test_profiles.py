"""Tests for population profiles."""

import pytest

from repro.malware.corpus import limewire_strains, openft_strains
from repro.peers.profiles import (GnutellaProfile, OpenFTProfile,
                                  StrainSeeding)


class TestStrainSeeding:
    def test_valid(self):
        StrainSeeding(initial_hosts=2, final_hosts=5)

    def test_final_below_initial_rejected(self):
        with pytest.raises(ValueError):
            StrainSeeding(initial_hosts=5, final_hosts=2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StrainSeeding(initial_hosts=-1, final_hosts=2)

    def test_dedicated_must_be_single_host(self):
        with pytest.raises(ValueError):
            StrainSeeding(initial_hosts=2, final_hosts=2, dedicated=True)


class TestGnutellaProfile:
    def test_seeding_covers_corpus(self):
        profile = GnutellaProfile()
        corpus_ids = {strain.strain_id for strain in limewire_strains()}
        assert set(profile.seeding) == corpus_ids

    def test_top_strain_has_most_hosts(self):
        profile = GnutellaProfile()
        top = profile.seeding["lw-echo-a"]
        assert all(top.final_hosts >= seed.final_hosts
                   for seed in profile.seeding.values())

    def test_scaled_preserves_ratios(self):
        profile = GnutellaProfile()
        scaled = profile.scaled(2.0)
        assert scaled.clean_leaves == 2 * profile.clean_leaves
        assert scaled.ultrapeers == 2 * profile.ultrapeers
        original = profile.seeding["lw-echo-a"].final_hosts
        assert scaled.seeding["lw-echo-a"].final_hosts == 2 * original

    def test_scaled_down_keeps_minimums(self):
        scaled = GnutellaProfile().scaled(0.01)
        assert scaled.ultrapeers >= 4
        assert scaled.clean_leaves >= 10
        assert all(seed.final_hosts >= 1
                   for seed in scaled.seeding.values())

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            GnutellaProfile().scaled(0.0)


class TestOpenFTProfile:
    def test_seeding_covers_corpus(self):
        profile = OpenFTProfile()
        corpus_ids = {strain.strain_id for strain in openft_strains()}
        assert set(profile.seeding) == corpus_ids

    def test_exactly_one_dedicated_strain(self):
        profile = OpenFTProfile()
        dedicated = [strain_id for strain_id, seed in profile.seeding.items()
                     if seed.dedicated]
        assert dedicated == ["ft-share-a"]

    def test_dedicated_host_has_big_library(self):
        profile = OpenFTProfile()
        top = profile.seeding["ft-share-a"]
        assert top.resident_copies >= 10 * max(
            seed.resident_copies
            for strain_id, seed in profile.seeding.items()
            if not seed.dedicated)

    def test_scaled(self):
        profile = OpenFTProfile()
        scaled = profile.scaled(0.5)
        assert scaled.user_nodes == round(profile.user_nodes * 0.5)
        with pytest.raises(ValueError):
            profile.scaled(-1.0)
