"""Tests for the world builders."""

import pytest

from repro.malware.corpus import limewire_strains, openft_strains
from repro.peers.population import (build_gnutella_world,
                                    build_openft_world,
                                    proportioned_choices,
                                    proportioned_flags)
from repro.peers.profiles import GnutellaProfile, OpenFTProfile
from repro.simnet.clock import days, hours
from repro.simnet.kernel import Simulator


@pytest.fixture(scope="module")
def small_gnutella():
    sim = Simulator(seed=4)
    profile = GnutellaProfile().scaled(0.25)
    world = build_gnutella_world(sim, profile, limewire_strains(),
                                 horizon_s=days(2))
    return sim, profile, world


@pytest.fixture(scope="module")
def small_openft():
    sim = Simulator(seed=4)
    profile = OpenFTProfile().scaled(0.25)
    world = build_openft_world(sim, profile, openft_strains(),
                               horizon_s=days(2))
    return sim, profile, world


class TestProportioned:
    def test_flags_exact_count(self, sim):
        flags = proportioned_flags(sim.stream("f"), 100, 0.28)
        assert sum(flags) == 28
        assert len(flags) == 100

    def test_flags_shuffled(self, sim):
        flags = proportioned_flags(sim.stream("f"), 100, 0.5)
        assert flags != sorted(flags, reverse=True)

    def test_choices_exact_proportions(self, sim):
        picks = proportioned_choices(sim.stream("c"), 100,
                                     ["a", "b", "c"], [0.5, 0.3, 0.2])
        assert picks.count("a") == 50
        assert picks.count("b") == 30
        assert len(picks) == 100


class TestGnutellaWorld:
    def test_ground_truth_counts_match_seeding(self, small_gnutella):
        _, profile, world = small_gnutella
        for strain_id, seeding in profile.seeding.items():
            infected = world.infected_endpoints(strain_id)
            assert len(infected) == seeding.initial_hosts

    def test_infected_endpoints_have_infections(self, small_gnutella):
        _, _, world = small_gnutella
        for endpoint in world.infected_endpoints():
            assert world.infections[endpoint].infected

    def test_nat_proportion_exact(self, small_gnutella):
        _, profile, world = small_gnutella
        network = world.network
        clean = [servent for endpoint, servent in network.servents.items()
                 if endpoint.startswith("leaf")]
        natted = sum(1 for servent in clean if servent.behind_nat)
        assert natted == round(len(clean) * profile.clean_nat_fraction)

    def test_propagation_grows_ground_truth(self, small_gnutella):
        sim, profile, world = small_gnutella
        sim.run_until(days(2))
        for strain_id, seeding in profile.seeding.items():
            infected = world.infected_endpoints(strain_id)
            assert len(infected) == seeding.final_hosts

    def test_churn_processes_started(self, small_gnutella):
        _, profile, world = small_gnutella
        expected = (profile.ultrapeers + profile.clean_leaves
                    + sum(seed.final_hosts
                          for seed in profile.seeding.values()))
        assert len(world.churn_processes) == expected


class TestOpenFTWorld:
    def test_dedicated_host_exists_and_public(self, small_openft):
        _, _, world = small_openft
        dedicated = world.infected_endpoints("ft-share-a")
        assert len(dedicated) == 1
        node = world.network.nodes[dedicated[0]]
        assert not node.address.behind_nat
        # carries a large bait library
        assert len(node.library) >= 50

    def test_dedicated_host_always_online(self, small_openft):
        sim, _, world = small_openft
        dedicated = world.infected_endpoints("ft-share-a")[0]
        # probe strictly inside the campaign window: churn clamps every
        # straddling session to end exactly at the horizon, so at
        # days(2) itself even the always-on host's session has closed
        sim.run_until(days(2) - hours(1))
        assert world.network.nodes[dedicated].is_online()

    def test_users_adopted_after_drain(self, small_openft):
        sim, _, world = small_openft
        # same inside-the-window probe: a user whose session flips up
        # exactly at the clamped horizon sheds stale parents and
        # re-requests adoption, but the handshake cannot complete with
        # no sim time left
        sim.run_until(days(2) - hours(1))
        adopted = sum(1 for node in world.network.user_nodes
                      if node.parent_ids)
        assert adopted > 0.8 * len(world.network.user_nodes)

    def test_ground_truth_matches_seeding(self, small_openft):
        sim, profile, world = small_openft
        sim.run_until(days(2))
        for strain_id, seeding in profile.seeding.items():
            assert (len(world.infected_endpoints(strain_id))
                    == seeding.final_hosts)
