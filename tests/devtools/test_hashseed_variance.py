"""PYTHONHASHSEED variance: the linter's heuristics cannot prove hash
independence, so prove it empirically.

Two subprocesses run the identical short campaign under different hash
seeds and must print byte-identical summaries (headline metrics plus a
sha256 over every stored response record).  This is the regression
test for the class of bug fixed in ``openft/nodes.py`` -- builtin
``hash()`` of an endpoint string leaking into protocol ids.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

_SCRIPT = """
import hashlib, json, sys
from repro.core.experiments import HEADLINE_METRICS
from repro.core.measure import CampaignConfig
from repro.core.measure.campaign import (run_limewire_campaign,
                                         run_openft_campaign)
from repro.peers.profiles import GnutellaProfile, OpenFTProfile

network = sys.argv[1]
if network == "limewire":
    result = run_limewire_campaign(CampaignConfig(seed=5, duration_days=0.05),
                                   profile=GnutellaProfile().scaled(0.3))
else:
    result = run_openft_campaign(CampaignConfig(seed=5, duration_days=0.05),
                                 profile=OpenFTProfile().scaled(0.3))
digest = hashlib.sha256()
for record in result.store:
    digest.update(json.dumps(record.to_json(), sort_keys=True).encode())
print(json.dumps({
    "records": len(result.store),
    "store_sha256": digest.hexdigest(),
    "metrics": {name: fn(result)
                for name, fn in sorted(HEADLINE_METRICS[network].items())},
}, sort_keys=True))
"""


def run_campaign_summary(network: str, hash_seed: int) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT, network],
        capture_output=True, text=True, env=env, cwd=str(REPO_ROOT),
        timeout=600)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.mark.parametrize("network", ["limewire", "openft"])
def test_campaign_invariant_under_hash_seed(network):
    first = run_campaign_summary(network, hash_seed=0)
    second = run_campaign_summary(network, hash_seed=31337)
    assert first["records"] > 0
    assert first == second, (
        f"{network} campaign varies with PYTHONHASHSEED: "
        f"{first} != {second}")
