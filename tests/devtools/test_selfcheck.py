"""Selfcheck driver + the repo-is-clean lint gate + CLI wiring."""

from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools.selfcheck import run_digest_campaign, run_selfcheck

FAST = dict(days=0.02, scale=0.25)


class TestRunDigestCampaign:
    def test_same_seed_twice_matches(self):
        first = run_digest_campaign("limewire", seed=5, **FAST)
        second = run_digest_campaign("limewire", seed=5, **FAST)
        assert first == second  # digest, event count and metrics

    def test_different_seeds_differ(self):
        first = run_digest_campaign("limewire", seed=5, **FAST)
        second = run_digest_campaign("limewire", seed=6, **FAST)
        assert first[0] != second[0]

    def test_openft_network_supported(self):
        digest, events, metrics = run_digest_campaign(
            "openft", seed=5, **FAST)
        assert events > 0
        assert "prevalence" in metrics

    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError):
            run_digest_campaign("napster", seed=1, **FAST)


class TestRunSelfcheck:
    def test_passes_on_clean_tree(self):
        report = run_selfcheck(seeds=(3,), **FAST)
        assert report.ok
        assert report.sanitizer_armed
        assert report.checks[0].digests_match
        assert "PASS" in report.render()

    def test_cross_seed_distinct_flag(self):
        report = run_selfcheck(seeds=(3, 4), **FAST)
        assert report.cross_seed_distinct


class TestSanitizedReplication:
    def test_run_replications_sanitize_flag(self):
        from repro.core.experiments import run_replications
        from repro.core.measure import CampaignConfig
        from repro.peers.profiles import GnutellaProfile

        plain = run_replications(
            "limewire", [3], CampaignConfig(duration_days=0.02),
            profile=GnutellaProfile().scaled(0.25))
        sanitized = run_replications(
            "limewire", [3], CampaignConfig(duration_days=0.02),
            profile=GnutellaProfile().scaled(0.25), sanitize=True)
        # the sanitizer observes; it must not change a single metric
        assert {name: summary.values
                for name, summary in plain.metrics.items()} == \
               {name: summary.values
                for name, summary in sanitized.metrics.items()}


class TestRepoIsClean:
    """`repro-study lint --strict` exits 0 on this very tree.

    This is the enforcement: a determinism hazard anywhere in src/
    fails tier-1, not just the CI lint job.
    """

    def test_lint_strict_exit_zero(self, capsys):
        root = Path(__file__).resolve().parents[2]
        assert (root / "pyproject.toml").exists()
        code = main(["lint", "--strict", "--root", str(root)])
        out = capsys.readouterr().out
        assert code == 0, f"detlint found hazards:\n{out}"
        assert "0 findings" in out

    def test_lint_cached_run_is_byte_identical(self, capsys):
        from repro.devtools.detlint import lint_repo
        root = Path(__file__).resolve().parents[2]
        cold = lint_repo(root, use_cache=False)
        warm = lint_repo(root, use_cache=True)  # populates
        hot = lint_repo(root, use_cache=True)  # all hits
        assert cold.render(strict=True) == warm.render(strict=True) \
            == hot.render(strict=True)
        assert hot.cache_hits > 0

    def test_baseline_entries_stay_annotated_and_allowed(self):
        from repro.devtools.detlint import (BASELINE_ALLOWED_CODES,
                                            load_baseline)
        root = Path(__file__).resolve().parents[2]
        entries = load_baseline(root / "detlint-baseline.txt")
        assert entries, "baseline should carry the telemetry whitelist"
        # load_baseline enforces annotations + the allowed-code policy;
        # re-assert the policy itself so a loosening shows up here
        assert all(code in BASELINE_ALLOWED_CODES for code, _ in entries)
        assert "DET001" not in BASELINE_ALLOWED_CODES
        assert "LAY001" not in BASELINE_ALLOWED_CODES
        # every entry is observability- or supervision-side wall clock:
        # telemetry exporters, the kernel's sampled-callback pair, or
        # the resilience supervisor's watchdogs -- never simulation
        # state
        assert all("telemetry" in path or "kernel" in path
                   or "resilience" in path
                   for _, path in entries)

    def test_baseline_rejects_unannotated_entry(self, tmp_path):
        from repro.devtools.detlint import BaselineError, load_baseline
        bad = tmp_path / "baseline.txt"
        bad.write_text("DET002 src/repro/telemetry/spans.py\n")
        with pytest.raises(BaselineError, match="annotation"):
            load_baseline(bad)

    def test_baseline_rejects_hard_error_codes(self, tmp_path):
        from repro.devtools.detlint import BaselineError, load_baseline
        bad = tmp_path / "baseline.txt"
        bad.write_text("DET001 src/repro/core/x.py  # please\n")
        with pytest.raises(BaselineError, match="hard error"):
            load_baseline(bad)


class TestLockOrderCheck:
    def test_lock_order_check_passes_on_clean_tree(self):
        from repro.devtools.selfcheck import run_lock_order_check
        report = run_lock_order_check(days=0.02, scale=0.25)
        assert report.ok, report.render()
        assert report.locks_tracked > 0
        assert report.scrapes > 0
        assert not report.cycles
        assert "lock-order: PASS" in report.render()


class TestCli:
    def test_cli_selfcheck_passes(self, capsys):
        code = main(["selfcheck", "--seeds", "1", "--base-seed", "3",
                     "--days", "0.02", "--scale", "0.25"])
        out = capsys.readouterr().out
        assert code == 0
        assert "selfcheck: PASS" in out
        assert "caught injected random.random()" in out

    def test_cli_selfcheck_lock_order(self, capsys):
        code = main(["selfcheck", "--lock-order", "--days", "0.02",
                     "--scale", "0.25"])
        out = capsys.readouterr().out
        assert code == 0
        assert "lock-order: PASS" in out

    def test_cli_lint_sarif_output(self, capsys, tmp_path):
        import json
        root = Path(__file__).resolve().parents[2]
        sarif_path = tmp_path / "lint.sarif"
        code = main(["lint", "--strict", "--root", str(root),
                     "--sarif", str(sarif_path)])
        assert code == 0
        log = json.loads(sarif_path.read_text())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["tool"]["driver"]["name"] == "detlint"
        # clean tree: no results, and the file is deterministic
        assert log["runs"][0]["results"] == []
