"""Lint cache, --changed-only and SARIF export."""

import json
from pathlib import Path

from repro.cli import main
from repro.devtools.detlint import (Finding, LintCache, config_digest,
                                    load_config, render_sarif, to_sarif)


def _cache(tmp_path):
    root = Path(__file__).resolve().parents[2]
    return LintCache(tmp_path, config_digest(load_config(root)))


class TestLintCache:
    def test_roundtrip(self, tmp_path):
        cache = _cache(tmp_path)
        finding = Finding("src/repro/x.py", 3, 0, "DET002",
                          "wall clock", "use sim.now")
        key = cache.key("src/repro/x.py", b"import time\n")
        assert cache.get(key) is None
        cache.put(key, [finding], [])
        entry = cache.get(key)
        assert LintCache.findings_of(entry) == [finding]
        assert LintCache.edges_of(entry) == []
        assert cache.hits == 1 and cache.misses == 1

    def test_key_tracks_content_and_path(self, tmp_path):
        cache = _cache(tmp_path)
        base = cache.key("a.py", b"x = 1\n")
        assert cache.key("a.py", b"x = 2\n") != base
        assert cache.key("b.py", b"x = 1\n") != base

    def test_key_tracks_config(self, tmp_path):
        root = Path(__file__).resolve().parents[2]
        config = load_config(root)
        other = LintCache(tmp_path, config_digest(config) + "x")
        cache = _cache(tmp_path)
        assert cache.key("a.py", b"") != other.key("a.py", b"")

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = _cache(tmp_path)
        key = cache.key("a.py", b"x = 1\n")
        cache.put(key, [], [])
        (cache.directory / f"{key}.json").write_text("not json")
        assert cache.get(key) is None

    def test_entry_without_schema_fields_rejected(self, tmp_path):
        cache = _cache(tmp_path)
        key = cache.key("a.py", b"x = 1\n")
        cache.directory.mkdir(parents=True, exist_ok=True)
        (cache.directory / f"{key}.json").write_text('{"other": 1}')
        assert cache.get(key) is None


class TestChangedOnly:
    def test_no_changes_is_a_clean_exit(self, capsys, monkeypatch):
        import repro.cli as cli
        monkeypatch.setattr(cli, "_changed_python_files", lambda root: [])
        root = Path(__file__).resolve().parents[2]
        code = main(["lint", "--changed-only", "--root", str(root)])
        out = capsys.readouterr().out
        assert code == 0
        assert "nothing to lint" in out

    def test_subset_walk_skips_unused_baseline_strictness(self, capsys,
                                                          monkeypatch):
        import repro.cli as cli
        root = Path(__file__).resolve().parents[2]
        target = root / "src/repro/simnet/kernel.py"
        monkeypatch.setattr(cli, "_changed_python_files",
                            lambda _root: [target])
        code = main(["lint", "--changed-only", "--strict",
                     "--root", str(root)])
        out = capsys.readouterr().out
        # the full-tree baseline has entries for unwalked files; a
        # subset walk must not call them stale
        assert code == 0, out
        assert "unused baseline" not in out

    def test_changed_file_discovery_runs_git(self):
        from repro.cli import _changed_python_files
        root = Path(__file__).resolve().parents[2]
        changed = _changed_python_files(root)
        assert changed is None or all(
            str(path).endswith(".py") for path in changed)


class TestSarif:
    def test_log_structure_with_findings(self):
        findings = [
            Finding("src/repro/b.py", 9, 4, "DET007", "laundered", "fix"),
            Finding("src/repro/a.py", 2, 0, "CONC001", "race", "lock it"),
        ]
        log = to_sarif(findings)
        run = log["runs"][0]
        assert [rule["id"] for rule in run["tool"]["driver"]["rules"]] == \
            ["CONC001", "DET007"]
        results = run["results"]
        assert len(results) == 2
        # results come sorted by finding order (path, line, ...)
        assert results[0]["locations"][0]["physicalLocation"][
            "artifactLocation"]["uri"] == "src/repro/a.py"
        assert results[0]["ruleIndex"] == 0
        assert results[1]["ruleId"] == "DET007"
        assert "fix:" in results[1]["message"]["text"]
        assert results[1]["locations"][0]["physicalLocation"][
            "region"] == {"startLine": 9, "startColumn": 5}

    def test_render_is_deterministic(self):
        findings = [Finding("src/repro/a.py", 1, 0, "DET002", "m", "h")]
        assert render_sarif(findings) == render_sarif(list(findings))
        parsed = json.loads(render_sarif(findings))
        assert parsed["version"] == "2.1.0"

    def test_empty_log_has_no_rules(self):
        log = to_sarif([])
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["tool"]["driver"]["rules"] == []
