"""Runtime sanitizer: tripwires, record mode, clean restoration."""

import os
import random
import time
import uuid

import pytest

from repro.devtools.sanitizer import (DeterminismSanitizer, EntropyViolation,
                                      Violation)
from repro.simnet.rng import SeededStream


class TestRaiseMode:
    def test_bare_random_raises(self):
        with DeterminismSanitizer():
            with pytest.raises(EntropyViolation):
                random.random()

    def test_other_random_draws_raise(self):
        with DeterminismSanitizer():
            with pytest.raises(EntropyViolation):
                random.uniform(0.0, 1.0)
            with pytest.raises(EntropyViolation):
                random.shuffle([1, 2, 3])

    def test_time_time_raises_but_perf_counter_survives(self):
        with DeterminismSanitizer():
            with pytest.raises(EntropyViolation):
                time.time()
            # the telemetry sampling whitelist must keep working
            assert time.perf_counter() > 0

    def test_urandom_and_uuid4_raise(self):
        with DeterminismSanitizer():
            with pytest.raises(EntropyViolation):
                os.urandom(4)
            with pytest.raises(EntropyViolation):
                uuid.uuid4()

    def test_message_names_call_site(self):
        with DeterminismSanitizer():
            with pytest.raises(EntropyViolation,
                               match="random.random"):
                random.random()


class TestRecordMode:
    def test_calls_pass_through_and_are_recorded(self):
        with DeterminismSanitizer(mode="record") as sanitizer:
            value = random.random()
        assert 0.0 <= value < 1.0
        assert len(sanitizer.violations) == 1
        violation = sanitizer.violations[0]
        assert isinstance(violation, Violation)
        assert violation.source == "random.random"
        assert violation.filename.endswith("test_sanitizer.py")
        assert "test_calls_pass_through" in violation.function

    def test_multiple_sources_recorded_in_order(self):
        with DeterminismSanitizer(mode="record") as sanitizer:
            random.random()
            time.time()
        assert [v.source for v in sanitizer.violations] == [
            "random.random", "time.time"]

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            DeterminismSanitizer(mode="explode")


class TestRestoration:
    def test_originals_restored_after_exit(self):
        original_random = random.random
        original_time = time.time
        with DeterminismSanitizer():
            assert random.random is not original_random
        assert random.random is original_random
        assert time.time is original_time

    def test_restored_after_exception(self):
        original = random.random
        with pytest.raises(RuntimeError):
            with DeterminismSanitizer():
                raise RuntimeError("boom")
        assert random.random is original

    def test_nesting_is_rejected(self):
        with DeterminismSanitizer():
            with pytest.raises(RuntimeError, match="already armed"):
                with DeterminismSanitizer():
                    pass  # pragma: no cover
        # and the outer exit still restores cleanly
        assert not DeterminismSanitizer._armed

    def test_named_streams_keep_working_inside(self):
        stream = SeededStream(7, "test")
        with DeterminismSanitizer():
            values = [stream.uniform(0.0, 1.0) for _ in range(5)]
        assert SeededStream(7, "test").uniform(0.0, 1.0) == pytest.approx(
            values[0])
