"""Runtime sanitizer: tripwires, record mode, clean restoration."""

import os
import random
import time
import uuid

import pytest

from repro.devtools.sanitizer import (DeterminismSanitizer, EntropyViolation,
                                      Violation)
from repro.simnet.rng import SeededStream


class TestRaiseMode:
    def test_bare_random_raises(self):
        with DeterminismSanitizer():
            with pytest.raises(EntropyViolation):
                random.random()

    def test_other_random_draws_raise(self):
        with DeterminismSanitizer():
            with pytest.raises(EntropyViolation):
                random.uniform(0.0, 1.0)
            with pytest.raises(EntropyViolation):
                random.shuffle([1, 2, 3])

    def test_time_time_raises_but_perf_counter_survives(self):
        with DeterminismSanitizer():
            with pytest.raises(EntropyViolation):
                time.time()
            # the telemetry sampling whitelist must keep working
            assert time.perf_counter() > 0

    def test_urandom_and_uuid4_raise(self):
        with DeterminismSanitizer():
            with pytest.raises(EntropyViolation):
                os.urandom(4)
            with pytest.raises(EntropyViolation):
                uuid.uuid4()

    def test_message_names_call_site(self):
        with DeterminismSanitizer():
            with pytest.raises(EntropyViolation,
                               match="random.random"):
                random.random()


class TestRecordMode:
    def test_calls_pass_through_and_are_recorded(self):
        with DeterminismSanitizer(mode="record") as sanitizer:
            value = random.random()
        assert 0.0 <= value < 1.0
        assert len(sanitizer.violations) == 1
        violation = sanitizer.violations[0]
        assert isinstance(violation, Violation)
        assert violation.source == "random.random"
        assert violation.filename.endswith("test_sanitizer.py")
        assert "test_calls_pass_through" in violation.function

    def test_multiple_sources_recorded_in_order(self):
        with DeterminismSanitizer(mode="record") as sanitizer:
            random.random()
            time.time()
        assert [v.source for v in sanitizer.violations] == [
            "random.random", "time.time"]

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            DeterminismSanitizer(mode="explode")


class TestRestoration:
    def test_originals_restored_after_exit(self):
        original_random = random.random
        original_time = time.time
        with DeterminismSanitizer():
            assert random.random is not original_random
        assert random.random is original_random
        assert time.time is original_time

    def test_restored_after_exception(self):
        original = random.random
        with pytest.raises(RuntimeError):
            with DeterminismSanitizer():
                raise RuntimeError("boom")
        assert random.random is original

    def test_nesting_is_rejected(self):
        with DeterminismSanitizer():
            with pytest.raises(RuntimeError, match="already armed"):
                with DeterminismSanitizer():
                    pass  # pragma: no cover
        # and the outer exit still restores cleanly
        assert not DeterminismSanitizer._armed

    def test_named_streams_keep_working_inside(self):
        stream = SeededStream(7, "test")
        with DeterminismSanitizer():
            values = [stream.uniform(0.0, 1.0) for _ in range(5)]
        assert SeededStream(7, "test").uniform(0.0, 1.0) == pytest.approx(
            values[0])


class TestLockOrderRecorder:
    def test_consistent_order_has_no_cycles(self):
        import threading

        from repro.devtools.sanitizer import LockOrderRecorder
        with LockOrderRecorder() as recorder:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
            with a:
                with b:
                    pass
        assert recorder.locks_created >= 2
        assert recorder.cycles() == []
        assert "no cycles" in recorder.render()

    def test_inverted_order_reports_a_cycle(self):
        import threading

        from repro.devtools.sanitizer import LockOrderRecorder
        with LockOrderRecorder() as recorder:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        cycles = recorder.cycles()
        assert len(cycles) == 1
        assert len(cycles[0]) == 2
        assert "CYCLES" in recorder.render()

    def test_rlock_reentry_is_not_a_cycle(self):
        import threading

        from repro.devtools.sanitizer import LockOrderRecorder
        with LockOrderRecorder() as recorder:
            lock = threading.RLock()
            with lock:
                with lock:
                    pass
        assert recorder.cycles() == []

    def test_factories_restored_after_exit(self):
        import _thread
        import threading

        from repro.devtools.sanitizer import LockOrderRecorder
        with LockOrderRecorder():
            wrapped = threading.Lock()
            assert type(wrapped).__name__ == "_RecordingLock"
        plain = threading.Lock()
        assert isinstance(plain, type(_thread.allocate_lock()))

    def test_nested_recorders_rejected(self):
        from repro.devtools.sanitizer import LockOrderRecorder
        with LockOrderRecorder():
            with pytest.raises(RuntimeError, match="already armed"):
                with LockOrderRecorder():
                    pass

    def test_cross_thread_edges_recorded(self):
        import threading

        from repro.devtools.sanitizer import LockOrderRecorder
        with LockOrderRecorder() as recorder:
            a = threading.Lock()
            b = threading.Lock()

            def worker():
                with a:
                    with b:
                        pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert any(count for count in recorder.edges.values())
        assert recorder.cycles() == []
