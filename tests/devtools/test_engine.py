"""Engine semantics: config, baseline policy, deterministic output."""

from pathlib import Path

import pytest

from repro.devtools.detlint import (BaselineError, lint_repo, load_baseline,
                                    load_config)

PYPROJECT = """
[tool.detlint]
package = "pkg"
src = "src"
baseline = "baseline.txt"
rng_modules = ["pkg.rng"]
deferred_imports = ["high -> low"]

[tool.detlint.layers]
low = []
high = ["low"]
"<root>" = ["high", "low"]
"""


def build_repo(root: Path, files: dict, baseline: str = "",
               pyproject: str = PYPROJECT) -> Path:
    (root / "pyproject.toml").write_text(pyproject, encoding="utf-8")
    if baseline:
        (root / "baseline.txt").write_text(baseline, encoding="utf-8")
    for rel, source in files.items():
        path = root / "src" / "pkg" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


class TestConfig:
    def test_load_config_reads_detlint_table(self, tmp_path):
        build_repo(tmp_path, {"__init__.py": ""})
        config = load_config(tmp_path)
        assert config.package == "pkg"
        assert config.rng_modules == ("pkg.rng",)
        assert ("high", "low") in config.deferred_imports
        assert config.layers["high"] == ["low"]

    def test_missing_table_gives_defaults(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        config = load_config(tmp_path)
        assert config.package == "repro"
        assert config.layers == {}

    def test_bad_deferred_entry_rejected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.detlint]\ndeferred_imports = ['nonsense']\n")
        with pytest.raises(ValueError, match="src -> dst"):
            load_config(tmp_path)


class TestBaselinePolicy:
    def test_non_wallclock_code_rejected(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text("DET001 src/pkg/x.py  # nope\n")
        with pytest.raises(BaselineError, match="DET002"):
            load_baseline(path)

    def test_entry_without_annotation_rejected(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text("DET002 src/pkg/x.py\n")
        with pytest.raises(BaselineError, match="annotation"):
            load_baseline(path)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text("DET002 src/pkg/x.py extra  # why\n")
        with pytest.raises(BaselineError, match="not 'CODE path"):
            load_baseline(path)

    def test_baseline_suppresses_only_listed_file(self, tmp_path):
        root = build_repo(tmp_path, {
            "__init__.py": "",
            "clock.py": "import time\n\ndef f():\n    return time.time()\n",
            "other.py": "import time\n\ndef f():\n    return time.time()\n",
        }, baseline="DET002 src/pkg/clock.py  # sampling whitelist\n")
        result = lint_repo(root)
        assert [f.path for f in result.findings] == ["src/pkg/other.py"]
        assert [f.path for f in result.suppressed] == ["src/pkg/clock.py"]

    def test_unused_baseline_entry_fails_strict_only(self, tmp_path):
        root = build_repo(tmp_path, {"__init__.py": ""},
                          baseline="DET002 src/pkg/gone.py  # stale\n")
        result = lint_repo(root)
        assert result.clean
        assert result.unused_baseline == ["DET002 src/pkg/gone.py"]
        assert result.exit_code(strict=False) == 0
        assert result.exit_code(strict=True) == 1


class TestDeterministicOutput:
    def test_two_runs_render_identically(self, tmp_path):
        root = build_repo(tmp_path, {
            "__init__.py": "",
            "a.py": "import random\n",
            "b.py": "def f(x):\n    return hash(x)\n",
            "low/__init__.py": "",
            "low/c.py": "from ..a import x\n",  # low importing <root>: LAY001
        })
        first = lint_repo(root)
        second = lint_repo(root)
        assert first.render(strict=True) == second.render(strict=True)
        assert [f.render() for f in first.findings] == \
               sorted(f.render() for f in first.findings)

    def test_findings_sorted_by_path_then_line(self, tmp_path):
        root = build_repo(tmp_path, {
            "__init__.py": "",
            "z.py": "import random\n",
            "a.py": "import random\nimport time\n\ndef f():\n"
                    "    return time.time()\n",
        })
        result = lint_repo(root)
        locations = [(f.path, f.line) for f in result.findings]
        assert locations == sorted(locations)
