"""Event-stream digest: the one-hash reduction of a whole run."""

from repro.devtools.sanitizer import DigestTelemetry, EventDigest
from repro.simnet.kernel import Simulator


def run_jittered(seed, horizon=100.0):
    """A sim whose event stream depends on seeded draws."""
    telemetry = DigestTelemetry()
    sim = Simulator(seed=seed, telemetry=telemetry)
    sim.every(5.0, lambda: None, label="tick",
              jitter=sim.stream("jitter"), until=horizon)
    sim.after(1.0, lambda: sim.after(sim.stream("x").uniform(1.0, 9.0),
                                     lambda: None, label="chained"),
              label="starter")
    sim.run_until(horizon)
    return telemetry, sim


class TestEventDigest:
    def test_same_feed_same_digest(self):
        a, b = EventDigest(), EventDigest()
        for digest in (a, b):
            digest.on_event(1.0, "x")
            digest.on_event(2.5, "y")
        assert a.hexdigest() == b.hexdigest()
        assert a.events == 2

    def test_order_matters(self):
        a, b = EventDigest(), EventDigest()
        a.on_event(1.0, "x")
        a.on_event(2.5, "y")
        b.on_event(2.5, "y")
        b.on_event(1.0, "x")
        assert a.hexdigest() != b.hexdigest()

    def test_label_and_time_matter(self):
        a, b, c = EventDigest(), EventDigest(), EventDigest()
        a.on_event(1.0, "x")
        b.on_event(1.0, "y")
        c.on_event(1.5, "x")
        assert len({a.hexdigest(), b.hexdigest(), c.hexdigest()}) == 3


class TestKernelHook:
    def test_digest_counts_every_processed_event(self):
        telemetry, sim = run_jittered(seed=3)
        assert telemetry.digest.events == sim.events_processed
        assert telemetry.digest.events > 0

    def test_same_seed_same_digest(self):
        first, _ = run_jittered(seed=11)
        second, _ = run_jittered(seed=11)
        assert first.hexdigest() == second.hexdigest()

    def test_different_seed_different_digest(self):
        first, _ = run_jittered(seed=11)
        second, _ = run_jittered(seed=12)
        assert first.hexdigest() != second.hexdigest()

    def test_label_counts_still_maintained(self):
        telemetry, sim = run_jittered(seed=3)
        assert telemetry.label_counts["tick"] > 0
        assert sum(telemetry.label_counts.values()) == sim.events_processed

    def test_plain_kernel_telemetry_unaffected(self):
        # the stock KernelTelemetry has no on_event hook: the kernel
        # must keep working (and counting) without one
        from repro.telemetry.kernel import KernelTelemetry
        from repro.telemetry.registry import MetricRegistry

        telemetry = KernelTelemetry(MetricRegistry())
        sim = Simulator(seed=3, telemetry=telemetry)
        sim.every(5.0, lambda: None, label="tick", until=50.0)
        sim.run_until(50.0)
        assert telemetry.events_seen == sim.events_processed
