"""Concurrency lint (CONC001-003): seeded-mutation pairs.

The bad fixture reproduces the shape of the real TelemetryServer race
this pass caught (handler thread reading fields the mainline mutates
without a lock); the fixed fixture is the shape of the fix.
"""

import textwrap

from .conftest import codes, concurrency_source


def lint(snippet, **kwargs):
    return concurrency_source(textwrap.dedent(snippet), **kwargs)


BAD_SERVER = """
    import threading
    from http.server import BaseHTTPRequestHandler

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):
            if self.server.owner._httpd is None:
                return
            self.server.owner.hits += 1

    class Server:
        def __init__(self):
            self._httpd = None
            self.hits = 0
            self._thread = None

        def start(self):
            self._httpd = object()
            self._thread = threading.Thread(target=self._serve)
            self._thread.start()

        def _serve(self):
            while self._httpd is not None:
                pass

        def stop(self):
            self._httpd = None
            self._thread = None
"""

FIXED_SERVER = """
    import threading
    from http.server import BaseHTTPRequestHandler

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):
            owner = self.server.owner
            with owner._lock:
                if owner._httpd is None:
                    return
                owner.hits += 1

    class Server:
        def __init__(self):
            self._lock = threading.Lock()
            self._httpd = None
            self.hits = 0
            self._thread = None

        def start(self):
            with self._lock:
                self._httpd = object()
                thread = threading.Thread(target=self._serve)
                self._thread = thread
            thread.start()

        def _serve(self):
            with self._lock:
                alive = self._httpd is not None
            while alive:
                with self._lock:
                    alive = self._httpd is not None

        def stop(self):
            with self._lock:
                self._httpd = None
                self._thread = None
"""


class TestCONC001SharedState:
    def test_bad_unlocked_cross_thread_mutation_fires(self):
        findings = lint(BAD_SERVER)
        assert "CONC001" in codes(findings)

    def test_fixed_locked_access_is_silent(self):
        findings = lint(FIXED_SERVER)
        assert findings == []

    def test_thread_owning_class_rule(self):
        # a class that starts a thread over its own method: any
        # unlocked mutation of state the thread reads is flagged even
        # without an HTTP handler in sight
        findings = lint("""
            import threading

            class Pump:
                def __init__(self):
                    self.total = 0

                def start(self):
                    threading.Thread(target=self._work).start()

                def _work(self):
                    self.total += 1

                def bump(self):
                    self.total += 1
        """)
        assert "CONC001" in codes(findings)

    def test_single_threaded_class_is_silent(self):
        findings = lint("""
            class Counter:
                def __init__(self):
                    self.total = 0

                def bump(self):
                    self.total += 1
        """)
        assert findings == []


class TestCONC002LockOrder:
    def test_inversion_fires(self):
        findings = lint("""
            import threading

            class Pair:
                def __init__(self):
                    self._a_lock = threading.Lock()
                    self._b_lock = threading.Lock()

                def ab(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def ba(self):
                    with self._b_lock:
                        with self._a_lock:
                            pass
        """)
        assert "CONC002" in codes(findings)

    def test_consistent_order_is_silent(self):
        findings = lint("""
            import threading

            class Pair:
                def __init__(self):
                    self._a_lock = threading.Lock()
                    self._b_lock = threading.Lock()

                def one(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def two(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass
        """)
        assert findings == []


class TestCONC003BlockingInCallback:
    def test_sleep_in_kernel_callback_fires(self):
        findings = lint("""
            import time

            def install(sim):
                def tick():
                    time.sleep(0.1)
                sim.after(1.0, tick)
        """)
        assert "CONC003" in codes(findings)

    def test_argless_join_in_callback_fires(self):
        findings = lint("""
            def install(sim, worker):
                def tick():
                    worker.join()
                sim.after(1.0, tick)
        """)
        assert "CONC003" in codes(findings)

    def test_str_join_is_not_blocking(self):
        findings = lint("""
            def install(sim, parts):
                def tick():
                    return ", ".join(parts)
                sim.after(1.0, tick)
        """)
        assert findings == []

    def test_sleep_outside_callbacks_is_silent(self):
        # blocking on the mainline (e.g. a CLI serve loop) is fine;
        # only kernel callbacks must never stall virtual time
        findings = lint("""
            import time

            def serve_forever():
                while True:
                    time.sleep(0.5)
        """)
        assert findings == []


class TestRealTelemetryPlane:
    def test_httpd_and_runtime_are_clean(self):
        from pathlib import Path

        from repro.devtools.detlint import check_concurrency, parse_module
        root = Path(__file__).resolve().parents[2]
        for rel in ("src/repro/telemetry/httpd.py",
                    "src/repro/telemetry/runtime.py"):
            module = parse_module(root / rel, rel,
                                  rel[4:-3].replace("/", "."))
            assert check_concurrency(module) == [], rel


class TestResilienceSupervisor:
    def test_supervisor_module_is_clean(self):
        # the watchdog pool runs a real heartbeat thread next to the
        # parent poll loop; the CONC pass must walk it and find nothing
        from pathlib import Path

        from repro.devtools.detlint import check_concurrency, parse_module
        root = Path(__file__).resolve().parents[2]
        rel = "src/repro/resilience/supervisor.py"
        module = parse_module(root / rel, rel,
                              rel[4:-3].replace("/", "."))
        assert check_concurrency(module) == []

    def test_unlocked_beat_state_would_be_flagged(self):
        # coverage is not vacuous: the supervisor's shape -- a beat
        # thread sharing state with the poll loop -- trips CONC001 the
        # moment the shared field loses its synchronization
        findings = lint("""
            import threading

            class Pool:
                def __init__(self):
                    self.last_beat = 0.0
                    self._thread = None

                def start(self):
                    self._thread = threading.Thread(target=self._beat)
                    self._thread.start()

                def _beat(self):
                    while True:
                        self.last_beat += 1.0

                def watchdog(self):
                    return self.last_beat
        """)
        assert "CONC001" in codes(findings)
