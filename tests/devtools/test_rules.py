"""Rule-by-rule fixtures: every DET rule gets a bad and a good snippet."""

import textwrap

from .conftest import codes, lint_source


def lint(snippet, **kwargs):
    return lint_source(textwrap.dedent(snippet), **kwargs)


class TestDET001BareRandom:
    def test_bad_module_random_call(self):
        findings = lint("""
            import random

            def jitter():
                return random.uniform(0.9, 1.1)
        """)
        assert codes(findings) == ["DET001", "DET001"]  # import + call

    def test_bad_unseeded_random_instance(self):
        findings = lint("""
            import random

            rng = random.Random()
        """)
        assert "DET001" in codes(findings)
        assert any("without a seed" in f.message for f in findings)

    def test_bad_from_import_draw(self):
        findings = lint("""
            from random import shuffle

            def mix(items):
                shuffle(items)
        """)
        assert codes(findings) == ["DET001", "DET001"]

    def test_bad_numpy_global_state(self):
        findings = lint("""
            import numpy as np

            def noise():
                return np.random.normal(0.0, 1.0)
        """)
        assert codes(findings) == ["DET001"]

    def test_good_named_stream(self):
        findings = lint("""
            def jitter(sim):
                return sim.stream("churn").uniform(0.9, 1.1)
        """)
        assert findings == []

    def test_good_seeded_numpy_generator(self):
        findings = lint("""
            import numpy as np

            def noise(seed):
                return np.random.default_rng(seed).normal(0.0, 1.0)
        """)
        assert findings == []

    def test_rng_module_itself_is_exempt(self):
        findings = lint("""
            import random

            class SeededStream:
                def __init__(self, seed):
                    self._random = random.Random(seed)
        """, dotted="repro.simnet.rng",
            relpath="src/repro/simnet/rng.py")
        assert findings == []


class TestDET002WallClock:
    def test_bad_time_time(self):
        findings = lint("""
            import time

            def stamp():
                return time.time()
        """)
        assert codes(findings) == ["DET002"]

    def test_bad_from_import_perf_counter(self):
        findings = lint("""
            from time import perf_counter

            def stamp():
                return perf_counter()
        """)
        assert codes(findings) == ["DET002"]

    def test_bad_datetime_now(self):
        findings = lint("""
            import datetime

            def stamp():
                return datetime.datetime.now()
        """)
        assert codes(findings) == ["DET002"]

    def test_bad_datetime_from_import(self):
        findings = lint("""
            from datetime import datetime

            def stamp():
                return datetime.utcnow()
        """)
        assert codes(findings) == ["DET002"]

    def test_good_virtual_time(self):
        findings = lint("""
            def stamp(sim):
                return sim.now
        """)
        assert findings == []


class TestDET003UnorderedIteration:
    def test_bad_set_iteration_scheduling(self):
        findings = lint("""
            def announce(sim, peers):
                targets = set(peers)
                for peer in targets:
                    sim.after(1.0, peer.ping, label="ping")
        """)
        assert codes(findings) == ["DET003"]

    def test_bad_set_literal_rng_draw(self):
        findings = lint("""
            def pick(stream):
                for name in {"a", "b", "c"}:
                    if stream.random() < 0.5:
                        return name
        """)
        assert codes(findings) == ["DET003"]

    def test_bad_set_intersection_feeding_scheduler(self):
        findings = lint("""
            def sync(sim, alive, infected):
                alive = set(alive)
                both = alive & set(infected)
                for host in both:
                    sim.at(5.0, host.sync)
        """)
        assert codes(findings) == ["DET003"]

    def test_bad_keys_of_set_valued_name(self):
        # .keys() heuristic only fires when the receiver is set-typed;
        # a plain dict iterates in insertion order and is fine
        findings = lint("""
            def f(sim, table):
                pending = set(table)
                for key in pending:
                    sim.after(1.0, lambda: None)
        """)
        assert codes(findings) == ["DET003"]

    def test_good_sorted_iteration(self):
        findings = lint("""
            def announce(sim, peers):
                targets = set(peers)
                for peer in sorted(targets):
                    sim.after(1.0, peer.ping, label="ping")
        """)
        assert findings == []

    def test_good_set_iteration_without_sink(self):
        findings = lint("""
            def census(peers):
                count = 0
                for peer in set(peers):
                    count += 1
                return count
        """)
        assert findings == []

    def test_good_dict_iteration_with_sink(self):
        findings = lint("""
            def announce(sim, schedule):
                for name in schedule:
                    sim.after(1.0, lambda: None, label=name)
        """)
        assert findings == []


class TestDET004HashSeed:
    def test_bad_hash_of_string(self):
        findings = lint("""
            def tag(endpoint_id):
                return hash(endpoint_id) & 0xFFFF
        """)
        assert codes(findings) == ["DET004"]

    def test_good_numeric_hash_and_crc(self):
        findings = lint("""
            import zlib

            def tag(endpoint_id):
                return zlib.crc32(endpoint_id.encode()) & 0xFFFF

            def numeric():
                return hash(42)
        """)
        assert findings == []


class TestDET005IdOrder:
    def test_bad_sorted_key_id(self):
        findings = lint("""
            def order(nodes):
                return sorted(nodes, key=id)
        """)
        assert codes(findings) == ["DET005"]

    def test_bad_sort_key_lambda_id(self):
        findings = lint("""
            def order(nodes):
                nodes.sort(key=lambda node: id(node))
        """)
        assert codes(findings) == ["DET005"]

    def test_good_attribute_key(self):
        findings = lint("""
            def order(nodes):
                return sorted(nodes, key=lambda node: node.name)
        """)
        assert findings == []


class TestDET006AmbientEntropy:
    def test_bad_environ_subscript(self):
        findings = lint("""
            import os

            def seed():
                return int(os.environ["SEED"])
        """)
        assert codes(findings) == ["DET006"]

    def test_bad_getenv_and_urandom(self):
        findings = lint("""
            import os

            def noise():
                os.getenv("DEBUG")
                return os.urandom(8)
        """)
        assert codes(findings) == ["DET006", "DET006"]

    def test_bad_uuid4_and_secrets(self):
        findings = lint("""
            import secrets
            import uuid

            def ident():
                return uuid.uuid4(), secrets.token_hex(4)
        """)
        assert codes(findings) == ["DET006", "DET006"]

    def test_bad_from_import_urandom(self):
        findings = lint("""
            from os import urandom

            def noise():
                return urandom(8)
        """)
        assert codes(findings) == ["DET006"]

    def test_good_config_threading(self):
        findings = lint("""
            def seed(config):
                return config.seed
        """)
        assert findings == []


class TestFindingHygiene:
    def test_findings_sorted_and_stable(self):
        source = """
            import random
            import time

            def f():
                time.time()
                return random.random()
        """
        first = lint(source)
        second = lint(source)
        assert first == second
        assert first == sorted(first)

    def test_render_has_location_code_and_hint(self):
        finding = lint("""
            import time

            def f():
                return time.time()
        """)[0]
        text = finding.render()
        assert "src/repro/gnutella/fake.py" in text
        assert "DET002" in text
        assert "[fix:" in text
