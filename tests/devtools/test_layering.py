"""Layering checker: the declared DAG vs a synthetic package on disk."""

from pathlib import Path

import pytest

from repro.devtools.detlint import (LintConfig, check_layers,
                                    collect_modules, extract_edges)

LAYERS = {
    "low": [],
    "mid": ["low"],
    "high": ["low", "mid"],
    "<root>": ["high", "low", "mid"],
}


def build_package(root: Path, files: dict) -> LintConfig:
    """Write ``files`` (relative to src/pkg) and return a lint config."""
    for rel, source in files.items():
        path = root / "src" / "pkg" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return LintConfig(root=root, package="pkg", src="src", layers=LAYERS)


def layer_findings(config, deferred=frozenset()):
    modules = collect_modules(config)
    return check_layers(modules, config.layers, set(deferred), package="pkg")


class TestLayerDAG:
    def test_clean_package_has_no_findings(self, tmp_path):
        config = build_package(tmp_path, {
            "__init__.py": "from .high import api\n",
            "low/__init__.py": "VALUE = 1\n",
            "mid/__init__.py": "from ..low import VALUE\n",
            "high/__init__.py": "from ..mid import VALUE as api\n",
        })
        assert layer_findings(config) == []

    def test_upward_import_is_lay001(self, tmp_path):
        config = build_package(tmp_path, {
            "__init__.py": "",
            "low/__init__.py": "",
            "low/bad.py": "from ..high import api\n",
            "mid/__init__.py": "",
            "high/__init__.py": "api = 1\n",
        })
        findings = layer_findings(config)
        assert [f.code for f in findings] == ["LAY001"]
        assert "low -> high" in findings[0].message
        assert findings[0].path.endswith("low/bad.py")

    def test_absolute_import_also_checked(self, tmp_path):
        config = build_package(tmp_path, {
            "__init__.py": "",
            "low/__init__.py": "import pkg.high\n",
            "high/__init__.py": "",
        })
        findings = layer_findings(config)
        assert [f.code for f in findings] == ["LAY001"]

    def test_undeclared_layer_is_flagged(self, tmp_path):
        config = build_package(tmp_path, {
            "__init__.py": "",
            "low/__init__.py": "",
            "rogue/__init__.py": "from ..low import x\n",
        })
        findings = layer_findings(config)
        assert [f.code for f in findings] == ["LAY001"]
        assert "not declared" in findings[0].message

    def test_deferred_violation_is_lay002(self, tmp_path):
        config = build_package(tmp_path, {
            "__init__.py": "",
            "low/__init__.py": (
                "def arm():\n"
                "    from ..high import api\n"
                "    return api\n"),
            "high/__init__.py": "api = 1\n",
        })
        findings = layer_findings(config)
        assert [f.code for f in findings] == ["LAY002"]

    def test_declared_deferred_edge_is_allowed(self, tmp_path):
        config = build_package(tmp_path, {
            "__init__.py": "",
            "low/__init__.py": (
                "def arm():\n"
                "    from ..high import api\n"
                "    return api\n"),
            "high/__init__.py": "api = 1\n",
        })
        assert layer_findings(config, deferred={("low", "high")}) == []

    def test_module_level_import_never_excused_by_deferred(self, tmp_path):
        config = build_package(tmp_path, {
            "__init__.py": "",
            "low/__init__.py": "from ..high import api\n",
            "high/__init__.py": "api = 1\n",
        })
        findings = layer_findings(config, deferred={("low", "high")})
        assert [f.code for f in findings] == ["LAY001"]


class TestEdgeExtraction:
    def test_relative_imports_resolve_from_init_and_module(self, tmp_path):
        config = build_package(tmp_path, {
            "__init__.py": "",
            "low/__init__.py": "from . import sibling\n",
            "low/sibling.py": "from .other import x\n",
            "low/other.py": "x = 1\n",
            "mid/__init__.py": "from ..low import x\n",
        })
        edges = extract_edges(collect_modules(config), package="pkg")
        pairs = {(e.src_layer, e.dst_layer) for e in edges}
        # intra-layer edges exist but never cross layers except mid->low
        assert ("mid", "low") in pairs
        assert all(src == dst or (src, dst) == ("mid", "low")
                   for src, dst in pairs)

    def test_function_imports_marked_deferred(self, tmp_path):
        config = build_package(tmp_path, {
            "__init__.py": "",
            "low/__init__.py": (
                "from ..mid import a\n"
                "def f():\n"
                "    from ..mid import b\n"),
            "mid/__init__.py": "a = b = 1\n",
        })
        edges = [e for e in extract_edges(collect_modules(config),
                                          package="pkg")
                 if e.dst_layer == "mid"]
        assert sorted(e.deferred for e in edges) == [False, True]


class TestRepoDAGMatchesReality:
    """The declared DAG in pyproject.toml must describe the real tree."""

    def test_real_src_tree_obeys_declared_layers(self):
        from repro.devtools.detlint import lint_repo
        root = Path(__file__).resolve().parents[2]
        if not (root / "pyproject.toml").exists():
            pytest.skip("repo root not found")
        result = lint_repo(root)
        layering = [f for f in result.findings
                    if f.code.startswith("LAY")]
        assert layering == []


class TestCheckEdgesDirect:
    """check_edges over hand-built edges (the cache rehydration path)."""

    def _edge(self, src, dst, deferred=False):
        from repro.devtools.detlint import ImportEdge
        return ImportEdge(src_layer=src, dst_layer=dst,
                          path=f"src/pkg/{src}/mod.py", line=3, col=0,
                          deferred=deferred, statement=f"pkg.{dst}.mod")

    def test_deferred_core_to_devtools_shape_is_declared(self):
        # the repo's own sanctioned escape hatch: core loads the
        # sanitizer inside run_replications(sanitize=True) only
        from repro.devtools.detlint import check_edges
        edge = self._edge("core", "devtools", deferred=True)
        layers = {"core": ["simnet"], "devtools": ["*"]}
        assert check_edges([edge], layers, {("core", "devtools")}) == []
        undeclared = check_edges([edge], layers, set())
        assert [f.code for f in undeclared] == ["LAY002"]

    def test_module_level_edge_ignores_deferred_declaration(self):
        from repro.devtools.detlint import check_edges
        edge = self._edge("core", "devtools", deferred=False)
        layers = {"core": ["simnet"], "devtools": ["*"]}
        findings = check_edges([edge], layers, {("core", "devtools")})
        assert [f.code for f in findings] == ["LAY001"]

    def test_cached_edges_equal_fresh_extraction(self, tmp_path):
        # rehydrated ImportEdges must drive check_edges to the same
        # verdicts as freshly extracted ones
        from repro.devtools.detlint import (LintCache, check_edges,
                                            config_digest, load_config)
        config = build_package(tmp_path, {
            "low/__init__.py": "VALUE = 1\n",
            "mid/__init__.py": "from ..low import VALUE\n"
                               "def bad():\n"
                               "    from pkg import high\n",
            "high/__init__.py": "from ..mid import VALUE\n",
        })
        modules = collect_modules(config)
        edges = extract_edges(modules, package="pkg")
        cache = LintCache(tmp_path, "digest")
        key = cache.key("edges", b"")
        cache.put(key, [], edges)
        rehydrated = LintCache.edges_of(cache.get(key))
        assert rehydrated == edges
        fresh = check_edges(edges, LAYERS, set())
        again = check_edges(rehydrated, LAYERS, set())
        assert fresh == again
        assert [f.code for f in fresh] == ["LAY002"]


class TestRealDeferredEdges:
    """The live tree's deferred escape hatches stay exactly as declared."""

    def test_declared_deferred_edges_cover_the_tree(self):
        from repro.devtools.detlint import (extract_edges, collect_modules,
                                            load_config)
        root = Path(__file__).resolve().parents[2]
        config = load_config(root)
        assert ("core", "devtools") in config.deferred_imports
        edges = extract_edges(collect_modules(config))
        deferred = {(e.src_layer, e.dst_layer) for e in edges if e.deferred
                    and e.src_layer != e.dst_layer}
        allowed_at_module_level = set()
        for src, targets in config.layers.items():
            for dst in targets:
                allowed_at_module_level.add((src, dst))
        escape_hatches = {pair for pair in deferred
                          if pair not in allowed_at_module_level
                          and "*" not in config.layers.get(pair[0], ())}
        assert escape_hatches <= config.deferred_imports

    def test_telemetry_never_imports_the_networks(self):
        # telemetry's kernel hook is duck-typed on purpose: the kernel
        # calls telemetry.on_event(...) without telemetry importing
        # simnet, gnutella or openft -- even deferred.  The one layer
        # telemetry may reach is resilience (the crash-safe artifact
        # store its journal/trace writers ride), which sits below it
        # and imports nothing itself.
        from repro.devtools.detlint import (extract_edges, collect_modules,
                                            load_config)
        root = Path(__file__).resolve().parents[2]
        config = load_config(root)
        modules = collect_modules(config)
        edges = extract_edges(modules)
        telemetry_out = {e.dst_layer for e in edges
                        if e.src_layer == "telemetry"
                        and e.dst_layer != "telemetry"}
        assert telemetry_out <= {"resilience"}
        resilience_out = {e.dst_layer for e in edges
                          if e.src_layer == "resilience"
                          and e.dst_layer != "resilience"}
        assert resilience_out == set()
