"""Helpers for the devtools (detlint / sanitizer / selfcheck) tests."""

import ast
from pathlib import Path

from repro.devtools.detlint import Module, all_rules


def lint_source(source, dotted="repro.gnutella.fake",
                relpath="src/repro/gnutella/fake.py",
                rng_modules=("repro.simnet.rng",)):
    """Run every DET rule over a source snippet; findings come sorted."""
    module = Module(path=Path(relpath), relpath=relpath, dotted=dotted,
                    tree=ast.parse(source), source=source)
    findings = []
    for rule in all_rules(tuple(rng_modules)):
        findings.extend(rule.check(module))
    return sorted(findings)


def codes(findings):
    return [finding.code for finding in findings]


def parse_source(source, dotted="repro.gnutella.fake",
                 relpath="src/repro/gnutella/fake.py"):
    """A Module for the pass-level checks (dataflow / twins / concurrency)."""
    return Module(path=Path(relpath), relpath=relpath, dotted=dotted,
                  tree=ast.parse(source), source=source)


def dataflow_source(source, rng_modules=("repro.simnet.rng",), **kwargs):
    from repro.devtools.detlint import check_dataflow
    return check_dataflow(parse_source(source, **kwargs),
                          tuple(rng_modules))


def concurrency_source(source, **kwargs):
    from repro.devtools.detlint import check_concurrency
    return check_concurrency(parse_source(source, **kwargs))
