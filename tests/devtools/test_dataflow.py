"""Dataflow taint (DET007/DET008): seeded-mutation pairs.

Every test class pairs a known-bad fixture (the check must fire) with
its fixed twin (the check must stay silent) -- the acceptance bar for
a lint rule is both directions, or it is either blind or noisy.
"""

import textwrap

from .conftest import codes, dataflow_source


def lint(snippet, **kwargs):
    return dataflow_source(textwrap.dedent(snippet), **kwargs)


class TestDET007LaunderedEntropy:
    def test_bad_wall_clock_laundered_into_delay(self):
        findings = lint("""
            import time

            def kick(sim, cb):
                jitter = time.time() % 1.0
                sim.after(jitter, cb)
        """)
        assert "DET007" in codes(findings)

    def test_fixed_stream_draw_is_silent(self):
        findings = lint("""
            def kick(sim, cb):
                jitter = sim.stream("churn").uniform(0.0, 1.0)
                sim.after(jitter, cb)
        """)
        assert findings == []

    def test_bad_entropy_through_helper_return(self):
        findings = lint("""
            import time

            def _now_ish():
                return time.time() * 0.5

            def kick(sim, cb):
                delay = _now_ish()
                sim.after(delay, cb)
        """)
        assert "DET007" in codes(findings)

    def test_bad_entropy_into_helper_sink_param(self):
        findings = lint("""
            import time

            def _schedule(sim, delay, cb):
                sim.after(delay, cb)

            def kick(sim, cb):
                noisy = time.time() % 1.0
                _schedule(sim, noisy, cb)
        """)
        assert "DET007" in codes(findings)

    def test_bad_environ_laundered_into_seed(self):
        findings = lint("""
            import os

            def make_seed():
                salt = os.environ.get("SALT", "0")
                return int(salt)

            def build(sim):
                sim.stream("x").seed(make_seed())
        """)
        assert "DET007" in codes(findings)

    def test_direct_source_at_sink_stays_det002_territory(self):
        # time.time() directly inside the sink call is DET002's finding;
        # the dataflow pass must not double-report it
        findings = lint("""
            import time

            def kick(sim, cb):
                sim.after(time.time() % 1.0, cb)
        """)
        assert findings == []


class TestDET008OrderTaint:
    def test_bad_set_pop_reaches_scheduler(self):
        findings = lint("""
            def drain(sim, peers):
                alive = set(peers)
                first = alive.pop()
                sim.at(5.0, first)
        """)
        assert "DET008" in codes(findings)

    def test_fixed_sorted_pop_is_silent(self):
        findings = lint("""
            def drain(sim, peers):
                alive = sorted(set(peers))
                first = alive.pop()
                sim.at(5.0, first)
        """)
        assert findings == []

    def test_bad_loop_variable_escapes_loop(self):
        findings = lint("""
            def pick(sim, peers):
                chosen = None
                for peer in set(peers):
                    chosen = peer
                sim.after(1.0, chosen)
        """)
        assert "DET008" in codes(findings)

    def test_in_loop_sink_stays_det003_territory(self):
        # the sink lexically inside the iterating loop is DET003's
        # finding; the dataflow pass must not double-report it
        findings = lint("""
            def fanout(sim, peers):
                for peer in set(peers):
                    sim.after(1.0, peer)
        """)
        assert findings == []

    def test_cleanser_kills_order_taint(self):
        findings = lint("""
            def count(sim, peers):
                alive = set(peers)
                depth = len(alive)
                sim.after(float(depth), None)
        """)
        assert findings == []

    def test_reassignment_to_ordered_value_kills_taint(self):
        findings = lint("""
            def drain(sim, peers):
                alive = set(peers)
                alive = sorted(alive)
                head = alive[0]
                sim.at(5.0, head)
        """)
        assert findings == []


class TestDataflowOnRealTreeConventions:
    def test_rng_module_itself_is_exempt(self):
        findings = lint("""
            import time

            def reseed(sim):
                noisy = time.time()
                sim.stream("x").seed(noisy)
        """, dotted="repro.simnet.rng", relpath="src/repro/simnet/rng.py")
        assert findings == []

    def test_findings_are_sorted_and_deduped(self):
        findings = lint("""
            import time

            def kick(sim, cb):
                a = time.time() % 1.0
                sim.after(a, cb)
                sim.after(a, cb)
        """)
        assert findings == sorted(findings)
        assert len(set(findings)) == len(findings)
