"""Twin registry + drift checker (TWN001).

Synthetic fast/reference pairs: a matched pair stays silent, seeded
drift on any declared obligation fires, a renamed member fires at the
registry, and the wildcard-dispatch normalization holds.
"""

import textwrap

import pytest

from repro.devtools.detlint import TwinPair, check_twins, parse_twins
from repro.devtools.detlint.twins import TwinMember

from .conftest import codes, parse_source


def module(source, dotted="repro.gnutella.fake",
           relpath="src/repro/gnutella/fake.py"):
    return parse_source(textwrap.dedent(source), dotted=dotted,
                        relpath=relpath)


def pair(obligations, members=("repro.gnutella.fake:Node.fast",
                               "repro.gnutella.fake:Node.slow")):
    return TwinPair(name="fake-pair",
                    members=tuple(TwinMember.parse(m) for m in members),
                    obligations=tuple(obligations))


MATCHED = """
    class Node:
        def fast(self, message):
            try:
                self._handle_ping(message)
            except ValueError:
                self.drop_count += 1
                raise

        def slow(self, message):
            try:
                self._handle_ping_reference(message)
            except ValueError:
                self.drop_count += 1
                raise
"""


class TestMatchedPairIsSilent:
    def test_all_obligations_pass(self):
        mod = module(MATCHED)
        findings = check_twins(
            [mod], [pair(("counters", "handlers", "guards", "raises"))])
        assert findings == []


class TestSeededDrift:
    def test_counter_drift_fires(self):
        mod = module("""
            class Node:
                def fast(self, message):
                    self.drop_count += 1
                    self.seen_count += 1

                def slow(self, message):
                    self.drop_count += 1
        """)
        findings = check_twins([mod], [pair(("counters",))])
        assert codes(findings) == ["TWN001"]
        assert "seen_count" in findings[0].message

    def test_handler_drift_fires(self):
        mod = module("""
            class Node:
                def fast(self, message):
                    self._handle_ping(message)
                    self._handle_pong(message)

                def slow(self, message):
                    self._handle_ping_reference(message)
        """)
        findings = check_twins([mod], [pair(("handlers",))])
        assert codes(findings) == ["TWN001"]

    def test_guard_drift_fires(self):
        mod = module("""
            class Node:
                def fast(self, message):
                    try:
                        self._handle_ping(message)
                    except (ValueError, KeyError):
                        pass

                def slow(self, message):
                    try:
                        self._handle_ping_reference(message)
                    except ValueError:
                        pass
        """)
        findings = check_twins([mod], [pair(("guards",))])
        assert codes(findings) == ["TWN001"]

    def test_raise_drift_fires(self):
        mod = module("""
            class Node:
                def fast(self, message):
                    raise ValueError("bad")

                def slow(self, message):
                    return None
        """)
        findings = check_twins([mod], [pair(("raises",))])
        assert codes(findings) == ["TWN001"]

    def test_undeclared_obligation_does_not_fire(self):
        # drift on an obligation the pair did not declare is invisible
        mod = module("""
            class Node:
                def fast(self, message):
                    self.seen_count += 1

                def slow(self, message):
                    pass
        """)
        findings = check_twins([mod], [pair(("raises",))])
        assert findings == []


class TestRegistryResolution:
    def test_missing_member_fires_at_registry(self):
        mod = module("""
            class Node:
                def fast(self, message):
                    pass
        """)
        findings = check_twins([mod], [pair(("raises",))])
        assert codes(findings) == ["TWN001"]
        assert findings[0].path == "pyproject.toml"
        assert "slow" in findings[0].message

    def test_cross_module_members_resolve(self):
        fast = module("""
            def drain(queue):
                raise ValueError("empty")
        """, dotted="repro.simnet.fast", relpath="src/repro/simnet/fast.py")
        slow = module("""
            def drain(queue):
                raise ValueError("empty")
        """, dotted="repro.simnet.slow", relpath="src/repro/simnet/slow.py")
        pairs = [pair(("raises",), members=("repro.simnet.fast:drain",
                                            "repro.simnet.slow:drain"))]
        assert check_twins([fast, slow], pairs) == []


class TestWildcardDispatch:
    def test_both_sides_wildcard_dispatch_match(self):
        # when both twins dispatch via getattr(self, f"_handle_{kind}")
        # the named sets are unverifiable statically; parity passes
        mod = module("""
            class Node:
                def fast(self, kind, message):
                    handler = getattr(self, f"_handle_{kind}")
                    handler(message)

                def slow(self, kind, message):
                    handler = getattr(self, f"_handle_{kind}_reference")
                    handler(message)
        """)
        findings = check_twins([mod], [pair(("handlers",))])
        assert findings == []

    def test_mixed_dispatch_styles_fire(self):
        # one side wildcard, the other named: coverage cannot be proven,
        # so the drift checker refuses the pair
        mod = module("""
            class Node:
                def fast(self, kind, message):
                    handler = getattr(self, f"_handle_{kind}")
                    handler(message)

                def slow(self, kind, message):
                    self._handle_ping_reference(message)
        """)
        findings = check_twins([mod], [pair(("handlers",))])
        assert codes(findings) == ["TWN001"]


class TestParseTwins:
    def test_registry_roundtrip(self):
        pairs = parse_twins({
            "queue": {"members": ["repro.simnet.a:A", "repro.simnet.b:B"],
                      "obligations": ["api", "raises"]},
        })
        assert len(pairs) == 1
        assert pairs[0].name == "queue"
        assert pairs[0].obligations == ("api", "raises")

    def test_single_member_rejected(self):
        with pytest.raises(ValueError, match="two members"):
            parse_twins({"solo": {"members": ["repro.x:A"],
                                  "obligations": ["api"]}})

    def test_unknown_obligation_rejected(self):
        with pytest.raises(ValueError, match="unknown obligation"):
            parse_twins({"p": {"members": ["repro.x:A", "repro.x:B"],
                               "obligations": ["vibes"]}})

    def test_bad_member_spec_rejected(self):
        with pytest.raises(ValueError, match="pkg.module:Qual.name"):
            parse_twins({"p": {"members": ["no-colon", "repro.x:B"],
                               "obligations": ["api"]}})


class TestRealRegistry:
    def test_declared_pairs_hold_on_this_tree(self):
        # the live registry in pyproject.toml must keep passing; this is
        # the matched-pair silent test against the real twins
        from pathlib import Path

        from repro.devtools.detlint import collect_modules, load_config
        root = Path(__file__).resolve().parents[2]
        config = load_config(root)
        assert len(config.twins) >= 5, "twin registry went missing"
        modules = collect_modules(config)
        findings = [f for f in check_twins(modules, config.twins)]
        assert findings == []
