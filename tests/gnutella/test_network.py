"""Tests for the Gnutella network facade."""

from repro.gnutella.guid import new_guid


class TestLookup:
    def test_servent_by_guid(self, world):
        leaf = world.leaves[3]
        assert world.network.servent_by_guid(leaf.servent_guid) is leaf

    def test_unknown_guid(self, world):
        ghost = new_guid(world.sim.stream("ghost"))
        assert world.network.servent_by_guid(ghost) is None

    def test_online_count(self, world):
        total = len(world.network.servents)
        assert world.network.online_count() == total
        world.transport.set_online("leaf3", False)
        assert world.network.online_count() == total - 1


class TestFetch:
    def test_fetch_shared_file(self, world):
        leaf = world.leaves[4]
        shared = next(iter(leaf.library))
        blob = world.network.fetch(leaf.servent_guid, shared.sha1_urn)
        assert blob is shared.blob

    def test_fetch_from_offline_host_fails(self, world):
        leaf = world.leaves[4]
        shared = next(iter(leaf.library))
        world.transport.set_online(leaf.endpoint_id, False)
        assert world.network.fetch(leaf.servent_guid,
                                   shared.sha1_urn) is None

    def test_fetch_unknown_urn_fails(self, world):
        leaf = world.leaves[4]
        assert world.network.fetch(leaf.servent_guid,
                                   "urn:sha1:DOESNOTEXIST") is None

    def test_fetch_echo_body_from_infected_host(self, world):
        from repro.malware.infection import strain_body_blob
        infected = world.leaves[1]  # echo-infected, public address
        body = strain_body_blob(world.strains[0])
        blob = world.network.fetch(infected.servent_guid, body.sha1_urn())
        assert blob is not None
        assert blob.contains_marker(world.strains[0].marker)

    def test_fetch_echo_body_from_clean_host_fails(self, world):
        from repro.malware.infection import strain_body_blob
        clean = world.leaves[5]
        body = strain_body_blob(world.strains[0])
        assert world.network.fetch(clean.servent_guid,
                                   body.sha1_urn()) is None


class TestPush:
    def _hit_from_natted(self, world):
        """Query until the NATed echo leaf (leaf0) responds."""
        leaf0 = world.leaves[0]
        _, hits = world.query("push test query")
        return next(hit for hit, _ in hits
                    if hit.servent_guid == leaf0.servent_guid)

    def test_natted_fetch_requires_requester(self, world):
        hit = self._hit_from_natted(world)
        urn = hit.results[0].sha1_urn
        # no inbound path without a PUSH route
        assert world.network.fetch(hit.servent_guid, urn) is None

    def test_natted_fetch_via_push_route(self, world):
        hit = self._hit_from_natted(world)
        urn = hit.results[0].sha1_urn
        blob = world.network.fetch(hit.servent_guid, urn,
                                   requester_id="crawler")
        assert blob is not None
        assert blob.size == hit.results[0].file_size

    def test_route_push_directly(self, world):
        hit = self._hit_from_natted(world)
        assert world.network.route_push("crawler", hit.servent_guid)

    def test_push_fails_when_path_node_offline(self, world):
        hit = self._hit_from_natted(world)
        # take down the crawler's recorded next hop for this route
        next_hop = world.crawler.push_next_hop(hit.servent_guid)
        assert next_hop is not None
        world.transport.set_online(next_hop, False)
        assert not world.network.route_push("crawler", hit.servent_guid)
        assert world.network.fetch(hit.servent_guid,
                                   hit.results[0].sha1_urn,
                                   requester_id="crawler") is None

    def test_push_fails_without_prior_hit(self, world):
        # a fresh crawler that never saw a hit has no route to retrace
        leaf0 = world.leaves[0]
        crawler2 = world.network.create_crawler(
            "crawler2", world.allocator.allocate())
        assert not world.network.route_push("crawler2",
                                            leaf0.servent_guid)

    def test_push_to_unknown_guid_fails(self, world):
        from repro.gnutella.guid import new_guid
        ghost = new_guid(world.sim.stream("ghost2"))
        assert not world.network.route_push("crawler", ghost)


class TestCrawler:
    def test_crawler_attached_to_ultrapeers(self, world):
        assert world.crawler.peer_ids
        for up_id in world.crawler.peer_ids:
            up = world.network.servents[up_id]
            assert up.role == "ultrapeer"
            assert "crawler" in up.leaf_tables

    def test_crawler_registered_in_network(self, world):
        assert world.network.servents["crawler"] is world.crawler
        assert world.network.servent_by_guid(
            world.crawler.servent_guid) is world.crawler
