"""Tests for the 0.6 handshake."""

import pytest

from repro.gnutella.handshake import (HandshakeError, HandshakeMessage,
                                      accept_response, connect_request,
                                      final_ack, negotiate_roles,
                                      reject_response)


class TestCodec:
    def test_roundtrip(self):
        message = connect_request("LimeWire/4.12.3", ultrapeer=True,
                                  listen_ip="1.2.3.4", port=6346)
        decoded = HandshakeMessage.decode(message.encode())
        assert decoded.start_line == "GNUTELLA CONNECT/0.6"
        assert decoded.header("User-Agent") == "LimeWire/4.12.3"
        assert decoded.header("X-Ultrapeer") == "True"
        assert decoded.header("Listen-IP") == "1.2.3.4:6346"

    def test_header_lookup_case_insensitive(self):
        message = accept_response("giFT/0.11.8", ultrapeer=False)
        assert message.header("x-ultrapeer") == "False"
        assert message.header("missing", "dflt") == "dflt"

    def test_missing_terminator_rejected(self):
        with pytest.raises(HandshakeError):
            HandshakeMessage.decode(b"GNUTELLA CONNECT/0.6\r\n")

    def test_malformed_header_rejected(self):
        raw = b"GNUTELLA CONNECT/0.6\r\nbadheader\r\n\r\n"
        with pytest.raises(HandshakeError):
            HandshakeMessage.decode(raw)

    def test_non_ascii_rejected(self):
        with pytest.raises(HandshakeError):
            HandshakeMessage.decode("GNUTELLA CONNECT/0.6\r\n\r\n".encode(
                "utf-16"))

    def test_is_ok(self):
        assert accept_response("x", True).is_ok
        assert not reject_response(503, "Full").is_ok
        assert final_ack("x").is_ok


class TestNegotiation:
    def test_leaf_to_ultrapeer(self):
        request = connect_request("a", ultrapeer=False,
                                  listen_ip="1.1.1.1", port=6346)
        response = accept_response("b", ultrapeer=True)
        assert negotiate_roles(request, response) == ("leaf", "ultrapeer")

    def test_ultrapeer_pair(self):
        request = connect_request("a", ultrapeer=True,
                                  listen_ip="1.1.1.1", port=6346)
        response = accept_response("b", ultrapeer=True)
        assert negotiate_roles(request, response) == ("ultrapeer",
                                                      "ultrapeer")

    def test_leaf_guidance_demotes(self):
        request = connect_request("a", ultrapeer=True,
                                  listen_ip="1.1.1.1", port=6346)
        response = accept_response("b", ultrapeer=True,
                                   ultrapeer_needed=False)
        assert negotiate_roles(request, response) == ("leaf", "ultrapeer")

    def test_rejection_raises(self):
        request = connect_request("a", ultrapeer=False,
                                  listen_ip="1.1.1.1", port=6346)
        with pytest.raises(HandshakeError):
            negotiate_roles(request, reject_response(503, "Shielded"))
