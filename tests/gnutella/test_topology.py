"""Tests for topology construction."""

import pytest

from repro.gnutella.servent import GnutellaServent
from repro.gnutella.topology import (TopologyConfig, attach_leaf,
                                     build_topology, link_peers,
                                     sync_leaf_qrt)
from repro.simnet.addresses import AddressAllocator
from repro.simnet.transport import Transport


def make_servents(sim, ultrapeer_count, leaf_count):
    transport = Transport(sim)
    allocator = AddressAllocator(sim.stream("addr"))
    ultrapeers = [GnutellaServent(sim, transport, f"up{i}",
                                  allocator.allocate(), role="ultrapeer")
                  for i in range(ultrapeer_count)]
    leaves = [GnutellaServent(sim, transport, f"leaf{i}",
                              allocator.allocate(), role="leaf")
              for i in range(leaf_count)]
    return transport, ultrapeers, leaves


class TestBuildTopology:
    def test_mesh_connected_via_ring(self, sim):
        _, ultrapeers, leaves = make_servents(sim, 10, 0)
        adjacency = build_topology(ultrapeers, leaves, sim.stream("t"),
                                   TopologyConfig(ultrapeer_degree=4))
        # BFS from up0 must reach every ultrapeer
        seen, frontier = {"up0"}, ["up0"]
        while frontier:
            current = frontier.pop()
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        assert len(seen) == 10

    def test_degrees_near_target(self, sim):
        _, ultrapeers, _ = make_servents(sim, 12, 0)
        build_topology(ultrapeers, [], sim.stream("t"),
                       TopologyConfig(ultrapeer_degree=5))
        for ultrapeer in ultrapeers:
            assert 2 <= len(ultrapeer.peer_ids) <= 7

    def test_leaf_attachments(self, sim):
        _, ultrapeers, leaves = make_servents(sim, 6, 8)
        build_topology(ultrapeers, leaves, sim.stream("t"),
                       TopologyConfig(leaf_attachments=2))
        for leaf in leaves:
            assert len(leaf.peer_ids) == 2
            for up_id in leaf.peer_ids:
                ultrapeer = next(up for up in ultrapeers
                                 if up.endpoint_id == up_id)
                assert leaf.endpoint_id in ultrapeer.leaf_tables

    def test_qrt_installed_matches_library(self, sim):
        from repro.files.library import SharedFile
        from repro.files.payload import Blob
        _, ultrapeers, leaves = make_servents(sim, 3, 1)
        leaf = leaves[0]
        blob = Blob(content_key="k", extension="zip", size=10)
        leaf.library.add(SharedFile.make("unique_marker_words.zip", 10,
                                         "zip", blob))
        build_topology(ultrapeers, leaves, sim.stream("t"),
                       TopologyConfig(leaf_attachments=1))
        up = next(u for u in ultrapeers
                  if leaf.endpoint_id in u.leaf_tables)
        table = up.leaf_tables[leaf.endpoint_id]
        assert table.might_match("unique marker")
        assert not table.might_match("absent words")

    def test_needs_two_ultrapeers(self, sim):
        _, ultrapeers, _ = make_servents(sim, 1, 0)
        with pytest.raises(ValueError):
            build_topology(ultrapeers, [], sim.stream("t"),
                           TopologyConfig())


class TestLinkHelpers:
    def test_link_peers_bidirectional(self, sim):
        _, ultrapeers, _ = make_servents(sim, 2, 0)
        link_peers(ultrapeers[0], ultrapeers[1])
        assert ultrapeers[1].endpoint_id in ultrapeers[0].peer_ids
        assert ultrapeers[0].endpoint_id in ultrapeers[1].peer_ids

    def test_link_idempotent(self, sim):
        _, ultrapeers, _ = make_servents(sim, 2, 0)
        link_peers(ultrapeers[0], ultrapeers[1])
        link_peers(ultrapeers[0], ultrapeers[1])
        assert len(ultrapeers[0].peer_ids) == 1

    def test_self_link_rejected(self, sim):
        _, ultrapeers, _ = make_servents(sim, 2, 0)
        with pytest.raises(ValueError):
            link_peers(ultrapeers[0], ultrapeers[0])

    def test_attach_to_non_ultrapeer_rejected(self, sim):
        _, _, leaves = make_servents(sim, 0, 2)
        with pytest.raises(ValueError):
            attach_leaf(leaves[0], leaves[1])

    def test_resync_updates_table(self, sim):
        from repro.files.library import SharedFile
        from repro.files.payload import Blob
        _, ultrapeers, leaves = make_servents(sim, 2, 1)
        leaf = leaves[0]
        attach_leaf(leaf, ultrapeers[0])
        table_before = ultrapeers[0].leaf_tables[leaf.endpoint_id]
        assert not table_before.might_match("latecomer file")
        blob = Blob(content_key="late", extension="exe", size=1)
        leaf.library.add(SharedFile.make("latecomer_file.exe", 1, "exe",
                                         blob))
        sync_leaf_qrt(leaf, ultrapeers[0])
        assert ultrapeers[0].leaf_tables[leaf.endpoint_id].might_match(
            "latecomer file")
