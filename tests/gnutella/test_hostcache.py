"""Tests for the host cache and bootstrap flow."""

import pytest

from repro.gnutella.hostcache import (CachedHost, HostCache,
                                      format_x_try_ultrapeers,
                                      parse_x_try_ultrapeers)
from repro.gnutella.messages import Pong


def make_host(address="1.2.3.4", port=6346, last_seen=0.0,
              ultrapeer=True):
    return CachedHost(address=address, port=port, last_seen=last_seen,
                      ultrapeer=ultrapeer)


class TestHostCache:
    def test_add_and_candidates(self):
        cache = HostCache()
        cache.add(make_host("1.1.1.1", last_seen=1.0))
        cache.add(make_host("2.2.2.2", last_seen=5.0))
        candidates = cache.candidates(2)
        assert [host.address for host in candidates] == ["2.2.2.2",
                                                         "1.1.1.1"]

    def test_refresh_keeps_freshest(self):
        cache = HostCache()
        cache.add(make_host(last_seen=10.0))
        cache.add(make_host(last_seen=3.0))  # staler info ignored
        assert cache.candidates(1)[0].last_seen == 10.0

    def test_eviction_at_capacity(self):
        cache = HostCache(capacity=3)
        for index in range(5):
            cache.add(make_host(address=f"10.0.0.{index + 1}",
                                last_seen=float(index)))
        assert len(cache) == 3
        addresses = {host.address for host in cache.candidates(3)}
        assert addresses == {"10.0.0.3", "10.0.0.4", "10.0.0.5"}

    def test_leaves_filtered_from_candidates(self):
        cache = HostCache()
        cache.add(make_host("1.1.1.1", ultrapeer=False))
        cache.add(make_host("2.2.2.2", ultrapeer=True))
        assert [h.address for h in cache.candidates(5)] == ["2.2.2.2"]
        assert len(cache.candidates(5, ultrapeers_only=False)) == 2

    def test_add_pong(self):
        cache = HostCache()
        cache.add_pong(Pong(port=6346, address="3.3.3.3", file_count=9,
                            kbytes_shared=10), now=7.0)
        host = cache.candidates(1)[0]
        assert host.address == "3.3.3.3"
        assert host.file_count == 9

    def test_forget(self):
        cache = HostCache()
        cache.add(make_host("4.4.4.4"))
        cache.forget("4.4.4.4", 6346)
        assert len(cache) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            HostCache(capacity=0)


class TestXTryHeader:
    def test_roundtrip(self):
        hosts = [make_host("1.1.1.1", 6346), make_host("2.2.2.2", 6347)]
        value = format_x_try_ultrapeers(hosts)
        parsed = parse_x_try_ultrapeers(value, now=9.0)
        assert [(h.address, h.port) for h in parsed] == [
            ("1.1.1.1", 6346), ("2.2.2.2", 6347)]
        assert all(h.last_seen == 9.0 for h in parsed)

    @pytest.mark.parametrize("junk", [
        "", "garbage", "1.2.3.4", "1.2.3.4:notaport", "1.2.3.4:0",
        "1.2.3.4:99999", ",,,",
    ])
    def test_malformed_entries_skipped(self, junk):
        assert parse_x_try_ultrapeers(junk, now=0.0) == []

    def test_mixed_good_and_bad(self):
        parsed = parse_x_try_ultrapeers("bad, 1.1.1.1:6346 ,also:bad:x",
                                        now=0.0)
        assert len(parsed) == 1


class TestBootstrap:
    def test_bootstrap_attaches_crawler(self, world):
        crawler = world.network.bootstrap_crawler(
            "bootstrapped", world.allocator.allocate())
        assert len(crawler.peer_ids) >= 1
        for peer_id in crawler.peer_ids:
            assert world.network.servents[peer_id].role == "ultrapeer"

    def test_bootstrap_fills_host_cache(self, world):
        crawler = world.network.bootstrap_crawler(
            "bootstrapped2", world.allocator.allocate())
        assert crawler.host_cache is not None
        assert len(crawler.host_cache) >= 1

    def test_pongs_keep_feeding_cache(self, world):
        crawler = world.network.bootstrap_crawler(
            "bootstrapped3", world.allocator.allocate())
        before = len(crawler.host_cache)
        world.sim.run_until(world.sim.now + 30.0)  # ping answered
        assert len(crawler.host_cache) >= before

    def test_bootstrapped_crawler_can_query(self, world):
        crawler = world.network.bootstrap_crawler(
            "bootstrapped4", world.allocator.allocate())
        hits = []
        crawler.on_local_hit = lambda hit, header: hits.append(hit)
        crawler.originate_query("free music")
        world.sim.run_until(world.sim.now + 60.0)
        assert hits  # echo worms answer anything
