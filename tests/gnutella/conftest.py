"""Fixtures for Gnutella protocol tests: a small hand-wired overlay."""

import pytest

from repro.files.catalog import CatalogConfig, ContentCatalog
from repro.files.library import SharedFile, SharedLibrary
from repro.gnutella.network import GnutellaNetwork
from repro.gnutella.servent import GnutellaServent
from repro.gnutella.topology import TopologyConfig, build_topology
from repro.malware.corpus import limewire_strains
from repro.malware.infection import HostInfection
from repro.simnet.addresses import AddressAllocator
from repro.simnet.transport import Transport


class SmallWorld:
    """A compact overlay: 4 ultrapeers, 12 leaves (2 echo-infected)."""

    def __init__(self, sim):
        self.sim = sim
        self.transport = Transport(sim)
        self.allocator = AddressAllocator(sim.stream("addr"))
        self.catalog = ContentCatalog(CatalogConfig(works=100),
                                      sim.stream("catalog"))
        self.strains = limewire_strains()
        stream = sim.stream("world")

        self.ultrapeers = [
            GnutellaServent(sim, self.transport, f"up{i}",
                            self.allocator.allocate(), role="ultrapeer")
            for i in range(4)
        ]
        self.leaves = []
        for i in range(12):
            library = SharedLibrary()
            for _ in range(stream.randint(4, 15)):
                version = self.catalog.sample_version(stream)
                library.add(SharedFile.make(
                    self.catalog.decorate_filename(version), version.size,
                    version.extension, version.blob))
            infection = None
            if i < 2:
                infection = HostInfection()
                infection.infect(self.strains[0], library, stream)
            self.leaves.append(GnutellaServent(
                sim, self.transport, f"leaf{i}",
                self.allocator.allocate(behind_nat=(i == 0)),
                role="leaf", library=library, infection=infection))

        build_topology(self.ultrapeers, self.leaves, sim.stream("topo"),
                       TopologyConfig(ultrapeer_degree=3,
                                      leaf_attachments=2))
        self.network = GnutellaNetwork(sim, self.transport, self.ultrapeers,
                                       self.leaves, self.strains)
        self.crawler = self.network.create_crawler(
            "crawler", self.allocator.allocate())
        self.hits = []
        self.crawler.on_local_hit = (
            lambda hit, header: self.hits.append((hit, header)))

    def query(self, criteria, horizon=60.0):
        self.hits.clear()
        guid = self.crawler.originate_query(criteria)
        self.sim.run_until(self.sim.now + horizon)
        return guid, list(self.hits)


@pytest.fixture()
def world(sim):
    return SmallWorld(sim)
