"""Tests for the Gnutella binary codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnutella.constants import (DESCRIPTOR_QUERY, DESCRIPTOR_QUERY_HIT,
                                      HEADER_LENGTH)
from repro.gnutella.guid import new_guid
from repro.gnutella.messages import (Header, HitResult, MessageError, Ping,
                                     Pong, Push, Query, QueryHit,
                                     decode_payload, frame, parse_frame)
from repro.simnet.rng import SeededStream

GUID = new_guid(SeededStream(1, "guid"))


class TestHeader:
    def test_roundtrip(self):
        header = Header(GUID, DESCRIPTOR_QUERY, ttl=4, hops=2,
                        payload_length=10)
        assert Header.decode(header.encode() + b"\x00" * 10) == header

    def test_length(self):
        header = Header(GUID, DESCRIPTOR_QUERY, 4, 0, 0)
        assert len(header.encode()) == HEADER_LENGTH

    def test_short_header_rejected(self):
        with pytest.raises(MessageError):
            Header.decode(b"short")

    def test_huge_payload_rejected(self):
        raw = Header(GUID, DESCRIPTOR_QUERY, 4, 0, 0).encode()
        tampered = raw[:19] + (10**9).to_bytes(4, "little")
        with pytest.raises(MessageError):
            Header.decode(tampered)

    def test_abusive_ttl_rejected(self):
        with pytest.raises(MessageError):
            Header.decode(Header(GUID, 0x00, 200, 200, 0).encode())


class TestPingPong:
    def test_ping_roundtrip(self):
        assert Ping.decode(Ping().encode()) == Ping()

    def test_pong_roundtrip(self):
        pong = Pong(port=6346, address="10.1.2.3", file_count=42,
                    kbytes_shared=1024)
        assert Pong.decode(pong.encode()) == pong

    def test_pong_short_rejected(self):
        with pytest.raises(MessageError):
            Pong.decode(b"\x00\x01")


class TestQuery:
    def test_roundtrip(self):
        query = Query(min_speed_kbps=0, criteria="madonna angel",
                      extensions="urn:sha1:")
        assert Query.decode(query.encode()) == query

    def test_utf8_criteria(self):
        query = Query(min_speed_kbps=0, criteria="café music")
        assert Query.decode(query.encode()).criteria == "café music"

    def test_missing_nul_rejected(self):
        with pytest.raises(MessageError):
            Query.decode(b"\x00\x00no-nul-here")

    def test_too_short_rejected(self):
        with pytest.raises(MessageError):
            Query.decode(b"\x00")


class TestQueryHit:
    def make_hit(self, push=False, busy=False, results=None):
        results = results or (
            HitResult(file_index=1, file_size=1000,
                      filename="file_a.exe", sha1_urn="urn:sha1:AAAA"),
            HitResult(file_index=2, file_size=2000,
                      filename="file b.zip", sha1_urn=""),
        )
        return QueryHit(port=6346, address="192.168.1.9", speed_kbps=350,
                        results=results, servent_guid=GUID,
                        vendor=b"LIME", push_needed=push, busy=busy)

    def test_roundtrip(self):
        hit = self.make_hit()
        assert QueryHit.decode(hit.encode()) == hit

    def test_flags_roundtrip(self):
        hit = self.make_hit(push=True, busy=True)
        decoded = QueryHit.decode(hit.encode())
        assert decoded.push_needed and decoded.busy

    def test_private_address_preserved(self):
        decoded = QueryHit.decode(self.make_hit().encode())
        assert decoded.address == "192.168.1.9"

    def test_size_clamped_to_32bit(self):
        result = HitResult(file_index=1, file_size=2**40,
                           filename="huge.zip", sha1_urn="")
        hit = self.make_hit(results=(result,))
        assert QueryHit.decode(hit.encode()).results[0].file_size == 0xFFFFFFFF

    def test_empty_results_rejected(self):
        hit = self.make_hit()
        broken = QueryHit(port=1, address="1.2.3.4", speed_kbps=1,
                          results=(), servent_guid=GUID)
        with pytest.raises(MessageError):
            broken.encode()

    def test_truncated_rejected(self):
        raw = self.make_hit().encode()
        with pytest.raises(MessageError):
            QueryHit.decode(raw[:10])

    def test_private_data_roundtrip(self):
        hit = QueryHit(port=1, address="1.2.3.4", speed_kbps=1,
                       results=(HitResult(1, 10, "a.exe", ""),),
                       servent_guid=GUID,
                       private_data=b"\xc3\x82VC\x85LIME\x44")
        decoded = QueryHit.decode(hit.encode())
        assert decoded.private_data == hit.private_data

    def test_ggep_in_private_data_parses(self):
        from repro.gnutella.ggep import (GgepBlock, decode_ggep,
                                         encode_ggep)
        frame_bytes = encode_ggep([GgepBlock("VC", b"LIME\x44")])
        hit = QueryHit(port=1, address="1.2.3.4", speed_kbps=1,
                       results=(HitResult(1, 10, "a.exe", ""),),
                       servent_guid=GUID, private_data=frame_bytes)
        decoded = QueryHit.decode(hit.encode())
        blocks, _ = decode_ggep(decoded.private_data)
        assert blocks[0].payload == b"LIME\x44"


class TestPush:
    def test_roundtrip(self):
        push = Push(servent_guid=GUID, file_index=9, address="8.8.4.4",
                    port=6346)
        assert Push.decode(push.encode()) == push


class TestBye:
    def test_roundtrip(self):
        from repro.gnutella.messages import Bye
        bye = Bye(code=200, reason="Session closed")
        assert Bye.decode(bye.encode()) == bye

    def test_frame_roundtrip(self):
        from repro.gnutella.messages import Bye
        bye = Bye(code=503, reason="Shutting down")
        header, payload = parse_frame(frame(GUID, bye, ttl=1))
        assert decode_payload(header, payload) == bye

    def test_short_rejected(self):
        from repro.gnutella.messages import Bye
        with pytest.raises(MessageError):
            Bye.decode(b"\x00")

    def test_missing_nul_rejected(self):
        from repro.gnutella.messages import Bye
        with pytest.raises(MessageError):
            Bye.decode(b"\x00\x01no-nul")


class TestFraming:
    def test_frame_and_parse(self):
        query = Query(min_speed_kbps=0, criteria="test")
        raw = frame(GUID, query, ttl=4, hops=0)
        header, payload = parse_frame(raw)
        assert header.descriptor_type == DESCRIPTOR_QUERY
        assert decode_payload(header, payload) == query

    def test_length_mismatch_rejected(self):
        raw = frame(GUID, Query(0, "x"), ttl=1, hops=0)
        with pytest.raises(MessageError):
            parse_frame(raw + b"extra")

    def test_unknown_descriptor_rejected(self):
        header = Header(GUID, 0x77, 1, 0, 0)
        with pytest.raises(MessageError):
            decode_payload(header, b"")

    def test_query_hit_frame(self):
        hit = QueryHit(port=1, address="1.2.3.4", speed_kbps=56,
                       results=(HitResult(1, 10, "a.exe", ""),),
                       servent_guid=GUID)
        header, payload = parse_frame(frame(GUID, hit, ttl=3, hops=1))
        assert header.descriptor_type == DESCRIPTOR_QUERY_HIT
        assert decode_payload(header, payload) == hit


@given(criteria=st.text(
    alphabet=st.characters(blacklist_characters="\x00",
                           blacklist_categories=("Cs",)),
    min_size=0, max_size=60),
    speed=st.integers(min_value=0, max_value=65535))
@settings(max_examples=80, deadline=None)
def test_query_roundtrip_property(criteria, speed):
    query = Query(min_speed_kbps=speed, criteria=criteria)
    assert Query.decode(query.encode()) == query


@given(filename=st.text(
    alphabet=st.characters(blacklist_characters="\x00",
                           blacklist_categories=("Cs",)),
    min_size=1, max_size=40),
    size=st.integers(min_value=0, max_value=0xFFFFFFFF),
    index=st.integers(min_value=0, max_value=0xFFFFFFFF))
@settings(max_examples=80, deadline=None)
def test_hit_result_roundtrip_property(filename, size, index):
    result = HitResult(file_index=index, file_size=size,
                       filename=filename, sha1_urn="urn:sha1:X")
    decoded, consumed = HitResult.decode_from(result.encode(), 0)
    assert decoded == result
    assert consumed == len(result.encode())
