"""Tests for the dynamic query controller."""

import pytest

from repro.gnutella.servent import GnutellaServent
from repro.gnutella.topology import TopologyConfig, attach_leaf, build_topology
from repro.simnet.addresses import AddressAllocator
from repro.simnet.transport import Transport


def build_dq_world(sim, result_target=None):
    """8 dynamic-query ultrapeers in a mesh, 10 echo-free leaves plus a
    querying leaf."""
    from repro.files.catalog import CatalogConfig, ContentCatalog
    from repro.files.library import SharedFile, SharedLibrary

    transport = Transport(sim)
    allocator = AddressAllocator(sim.stream("addr"))
    catalog = ContentCatalog(CatalogConfig(works=80), sim.stream("cat"))
    stream = sim.stream("world")

    ultrapeers = []
    for index in range(8):
        up = GnutellaServent(sim, transport, f"up{index}",
                             allocator.allocate(), role="ultrapeer",
                             dynamic_queries=True)
        if result_target is not None:
            up.DQ_RESULT_TARGET = result_target
        ultrapeers.append(up)

    leaves = []
    for index in range(10):
        library = SharedLibrary()
        for _ in range(8):
            version = catalog.sample_version(stream)
            library.add(SharedFile.make(
                catalog.decorate_filename(version), version.size,
                version.extension, version.blob))
        leaves.append(GnutellaServent(sim, transport, f"leaf{index}",
                                      allocator.allocate(), role="leaf",
                                      library=library))
    build_topology(ultrapeers, leaves, sim.stream("topo"),
                   TopologyConfig(ultrapeer_degree=4, leaf_attachments=2))

    querier = GnutellaServent(sim, transport, "querier",
                              allocator.allocate(), role="leaf")
    attach_leaf(querier, ultrapeers[0])
    return transport, ultrapeers, leaves, querier, catalog


class TestDynamicQuery:
    def test_probing_is_paced(self, sim):
        _, ultrapeers, _, querier, catalog = build_dq_world(sim)
        querier.originate_query("nothing matches this")
        sim.run_until(sim.now + 1.0)  # one round at most so far
        first_round = ultrapeers[0].stats.queries_forwarded_peers
        assert first_round <= GnutellaServent.DQ_BATCH
        sim.run_until(sim.now + 30.0)
        assert (ultrapeers[0].stats.queries_forwarded_peers
                > first_round)  # later rounds fired

    def test_probes_whole_mesh_for_rare_content(self, sim):
        _, ultrapeers, _, querier, _ = build_dq_world(sim)
        querier.originate_query("zebra quantum xylophone")
        sim.run_until(sim.now + 60.0)
        # no results ever arrive, so the controller exhausts every
        # neighbour of the shield ultrapeer
        shield = ultrapeers[0]
        assert (shield.stats.queries_forwarded_peers
                == len(shield.peer_ids))

    def test_stops_early_when_satisfied(self, sim):
        _, ultrapeers, leaves, querier, catalog = build_dq_world(
            sim, result_target=1)
        shared = next(iter(leaves[0].library))
        query = " ".join(sorted(shared.tokens)[:2])
        hits = []
        querier.on_local_hit = lambda hit, header: hits.append(hit)
        querier.originate_query(query)
        sim.run_until(sim.now + 120.0)
        shield = ultrapeers[0]
        # satisfied controllers do not exhaust the mesh
        assert not shield._dynamic_states  # controller finished
        assert hits or shield.stats.queries_forwarded_peers <= len(
            shield.peer_ids)

    def test_leaves_served_immediately(self, sim):
        _, ultrapeers, leaves, querier, _ = build_dq_world(sim)
        shield = ultrapeers[0]
        target_leaf = next(
            (leaf for leaf in leaves
             if shield.endpoint_id in leaf.peer_ids), None)
        if target_leaf is None:
            pytest.skip("no leaf attached to the shield in this seed")
        shared = next(iter(target_leaf.library))
        hits = []
        querier.on_local_hit = lambda hit, header: hits.append(hit)
        querier.originate_query(" ".join(sorted(shared.tokens)[:2]))
        sim.run_until(sim.now + 5.0)  # before most probe rounds
        assert any(hit.servent_guid == target_leaf.servent_guid
                   for hit in hits)

    def test_flooding_upstream_unaffected(self, sim):
        # queries arriving from *other ultrapeers* still flood normally
        _, ultrapeers, _, querier, _ = build_dq_world(sim)
        querier.originate_query("free music")
        sim.run_until(sim.now + 60.0)
        downstream = [up for up in ultrapeers[1:]
                      if up.stats.queries_seen > 0]
        assert downstream  # probes propagated beyond the shield
