"""Encode-once fan-out: header patching, lazy parse, the frame cache."""

import pytest

from repro.gnutella.constants import HEADER_LENGTH
from repro.gnutella.guid import GUID_LENGTH
from repro.gnutella.messages import (FrameCache, Header, HitResult,
                                     MessageError, Ping, Pong, Query,
                                     QueryHit, frame, parse_frame,
                                     parse_header, patch_ttl_hops)

GUID_A = bytes(range(16))
GUID_B = bytes(range(16, 32))


def _query(criteria="malware sample"):
    return Query(min_speed_kbps=0, criteria=criteria)


def _hit():
    return QueryHit(
        port=6346, address="10.0.0.1", speed_kbps=350,
        results=(HitResult(file_index=1, file_size=57344,
                           filename="setup.exe"),),
        servent_guid=GUID_B)


class TestPatchTtlHops:
    @pytest.mark.parametrize("message", [
        _query(), _hit(), Ping(),
        Pong(port=6346, address="10.0.0.2", file_count=3,
             kbytes_shared=44),
    ])
    def test_patch_equals_reencode(self, message):
        raw = frame(GUID_A, message, ttl=7, hops=0)
        for ttl, hops in ((6, 1), (1, 6), (3, 3)):
            assert patch_ttl_hops(raw, ttl, hops) == \
                frame(GUID_A, message, ttl=ttl, hops=hops)

    def test_patch_changes_only_header_bytes(self):
        raw = frame(GUID_A, _query(), ttl=5, hops=2)
        patched = patch_ttl_hops(raw, 4, 3)
        header = Header.decode(patched)
        assert (header.ttl, header.hops) == (4, 3)
        assert patched[HEADER_LENGTH:] == raw[HEADER_LENGTH:]
        assert patched[:GUID_LENGTH + 1] == raw[:GUID_LENGTH + 1]

    def test_accepts_memoryview_without_materializing(self):
        # receive paths holding a view into a larger buffer patch
        # straight through it
        raw = frame(GUID_A, _query(), ttl=5, hops=2)
        view = memoryview(b"junk" + raw + b"junk")[4:4 + len(raw)]
        assert patch_ttl_hops(view, 4, 3) == patch_ttl_hops(raw, 4, 3)
        assert isinstance(patch_ttl_hops(view, 4, 3), bytes)

    def test_out_of_range_values_rejected(self):
        raw = frame(GUID_A, _query(), ttl=5, hops=2)
        with pytest.raises(ValueError):
            patch_ttl_hops(raw, 256, 0)
        with pytest.raises(ValueError):
            patch_ttl_hops(raw, 0, -1)


class TestParseHeader:
    def test_accepts_what_parse_frame_accepts(self):
        raw = frame(GUID_A, _query(), ttl=3, hops=1)
        header = parse_header(raw)
        full_header, payload = parse_frame(raw)
        assert header == full_header
        assert raw[HEADER_LENGTH:] == payload

    @pytest.mark.parametrize("raw", [
        b"", b"short",
        frame(GUID_A, _query(), ttl=3, hops=1)[:-1],  # truncated payload
        frame(GUID_A, _query(), ttl=3, hops=1) + b"x",  # trailing junk
    ])
    def test_rejects_what_parse_frame_rejects(self, raw):
        with pytest.raises(MessageError):
            parse_frame(raw)
        with pytest.raises(MessageError):
            parse_header(raw)


class TestFrameCache:
    def test_miss_then_hits(self):
        cache = FrameCache()
        query = _query()
        first = cache.frame(GUID_A, query, ttl=7, hops=0)
        assert (cache.hits, cache.misses) == (0, 1)
        again = cache.frame(GUID_A, query, ttl=7, hops=0)
        assert again == first
        patched = cache.frame(GUID_A, query, ttl=2, hops=3)
        assert (cache.hits, cache.misses) == (2, 1)
        assert cache.hit_rate == pytest.approx(2 / 3)
        assert patched == frame(GUID_A, query, ttl=2, hops=3)

    def test_byte_identical_to_plain_frame(self):
        cache = FrameCache()
        query = _query()
        for ttl, hops in ((7, 0), (6, 1), (2, 2), (7, 0)):
            assert cache.frame(GUID_A, query, ttl=ttl, hops=hops) == \
                frame(GUID_A, query, ttl=ttl, hops=hops)

    def test_identity_check_not_equality(self):
        cache = FrameCache()
        cache.frame(GUID_A, _query("one"), ttl=7, hops=0)
        # equal guid, different (even equal-valued) object: re-encode
        cache.frame(GUID_A, _query("one"), ttl=7, hops=0)
        assert (cache.hits, cache.misses) == (0, 2)

    def test_reused_guid_overwrites_entry(self):
        cache = FrameCache()
        cache.frame(GUID_A, _query("one"), ttl=7, hops=0)
        replacement = _query("two")
        raw = cache.frame(GUID_A, replacement, ttl=7, hops=0)
        assert raw == frame(GUID_A, replacement, ttl=7, hops=0)
        assert len(cache) == 1

    def test_fifo_eviction_at_capacity(self):
        cache = FrameCache(capacity=2)
        queries = {guid: _query(f"q{guid[0]}")
                   for guid in (GUID_A, GUID_B, bytes(range(32, 48)))}
        for guid, query in queries.items():
            cache.frame(guid, query, ttl=7, hops=0)
        assert len(cache) == 2
        # the oldest (GUID_A) was evicted; re-framing it misses
        cache.frame(GUID_A, queries[GUID_A], ttl=7, hops=0)
        assert cache.hits == 0 and cache.misses == 4

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FrameCache(capacity=0)

    def test_repeat_stamping_returns_cached_object(self):
        # the variant memo: fanning out at the same (ttl, hops) must
        # return the exact cached bytes object -- zero copies
        cache = FrameCache()
        query = _query()
        cache.frame(GUID_A, query, ttl=7, hops=0)
        first = cache.frame(GUID_A, query, ttl=6, hops=1)
        assert cache.patches == 1
        for _ in range(3):
            assert cache.frame(GUID_A, query, ttl=6, hops=1) is first
        assert cache.patches == 1  # stamped once, reused thereafter

    def test_variants_are_byte_identical_to_frame(self):
        cache = FrameCache()
        query = _query()
        stampings = ((7, 0), (6, 1), (7, 0), (5, 2), (6, 1))
        for ttl, hops in stampings:
            assert cache.frame(GUID_A, query, ttl=ttl, hops=hops) == \
                frame(GUID_A, query, ttl=ttl, hops=hops)
        assert cache.misses == 1  # body encoded exactly once
        assert cache.patches == 2  # two new stampings beyond the first
