"""Tests for GGEP framing and COBS."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnutella.ggep import (GGEP_MAGIC, GgepBlock, GgepError,
                                 cobs_decode, cobs_encode,
                                 daily_uptime_block, decode_ggep,
                                 encode_ggep, parse_daily_uptime,
                                 vendor_block)


class TestCobs:
    @pytest.mark.parametrize("data", [
        b"", b"\x00", b"\x00\x00", b"hello", b"he\x00llo", b"\x00end",
        b"end\x00", b"a" * 253, b"a" * 254, b"a" * 255, b"a" * 300,
        b"\x00" * 10, bytes(range(1, 100)),
    ])
    def test_roundtrip(self, data):
        encoded = cobs_encode(data)
        assert b"\x00" not in encoded
        assert cobs_decode(encoded) == data

    def test_decode_rejects_zero_code(self):
        with pytest.raises(GgepError):
            cobs_decode(b"\x00")

    def test_decode_rejects_truncation(self):
        with pytest.raises(GgepError):
            cobs_decode(b"\x05ab")

    @given(st.binary(max_size=600))
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_property(self, data):
        encoded = cobs_encode(data)
        assert b"\x00" not in encoded
        assert cobs_decode(encoded) == data


class TestGgep:
    def test_single_block_roundtrip(self):
        blocks = [GgepBlock("VC", b"LIME\x04")]
        raw = encode_ggep(blocks)
        assert raw[0] == GGEP_MAGIC
        decoded, consumed = decode_ggep(raw)
        assert decoded == blocks
        assert consumed == len(raw)

    def test_multiple_blocks(self):
        blocks = [GgepBlock("VC", b"LIME\x04"),
                  GgepBlock("DU", b"\x80\x51"),
                  GgepBlock("GUE", b"")]
        decoded, _ = decode_ggep(encode_ggep(blocks))
        assert decoded == blocks

    def test_cobs_block_roundtrip(self):
        blocks = [GgepBlock("X", b"has\x00nul\x00bytes", cobs=True)]
        raw = encode_ggep(blocks)
        # the payload area must be NUL-free so it can live between the
        # NUL-delimited extension sections of a Query
        assert b"\x00" not in raw[2 + 1:]
        decoded, _ = decode_ggep(raw)
        assert decoded[0].payload == b"has\x00nul\x00bytes"

    def test_large_payload_length_encoding(self):
        payload = b"x" * 5000  # needs a 2-byte granny length
        decoded, _ = decode_ggep(encode_ggep([GgepBlock("BIG", payload)]))
        assert decoded[0].payload == payload

    def test_trailing_bytes_not_consumed(self):
        raw = encode_ggep([GgepBlock("VC", b"LIME\x04")]) + b"trailing"
        decoded, consumed = decode_ggep(raw)
        assert decoded[0].extension_id == "VC"
        assert raw[consumed:] == b"trailing"

    def test_empty_frame_rejected(self):
        with pytest.raises(GgepError):
            encode_ggep([])

    def test_bad_magic_rejected(self):
        with pytest.raises(GgepError):
            decode_ggep(b"\x00\x81A\x80")

    def test_truncated_frame_rejected(self):
        raw = encode_ggep([GgepBlock("VC", b"LIME\x04")])
        with pytest.raises(GgepError):
            decode_ggep(raw[:-2])

    def test_id_length_validation(self):
        with pytest.raises(GgepError):
            GgepBlock("", b"")
        with pytest.raises(GgepError):
            GgepBlock("x" * 16, b"")


class TestWellKnownBlocks:
    def test_vendor_block(self):
        block = vendor_block(b"LIME", 0x44)
        assert block.extension_id == "VC"
        assert block.payload == b"LIME\x44"
        with pytest.raises(GgepError):
            vendor_block(b"TOOLONG", 1)

    def test_daily_uptime_roundtrip(self):
        for seconds in (0, 1, 3600, 86_400, 2**20):
            block = daily_uptime_block(seconds)
            assert parse_daily_uptime(block) == seconds

    def test_daily_uptime_validation(self):
        with pytest.raises(GgepError):
            daily_uptime_block(-1)
        with pytest.raises(GgepError):
            parse_daily_uptime(GgepBlock("VC", b"LIME\x01"))


@given(st.lists(
    st.tuples(
        st.text(alphabet=st.characters(min_codepoint=65, max_codepoint=90),
                min_size=1, max_size=15),
        st.binary(max_size=100),
        st.booleans()),
    min_size=1, max_size=5))
@settings(max_examples=80, deadline=None)
def test_ggep_roundtrip_property(specs):
    blocks = [GgepBlock(extension_id=ext_id, payload=payload, cobs=cobs)
              for ext_id, payload, cobs in specs]
    decoded, consumed = decode_ggep(encode_ggep(blocks))
    assert decoded == blocks
