"""Behavioural tests for the Gnutella servent."""

from repro.gnutella.guid import guid_hex
from repro.gnutella.messages import Ping, Pong, frame, parse_frame


class TestQueryFlow:
    def test_echo_hosts_answer_any_query(self, world):
        _, hits = world.query("zebra quantum xylophone")
        # nothing clean matches that, so every hit is a worm echo
        assert hits
        for hit, _ in hits:
            for result in hit.results:
                assert result.file_size == world.strains[0].primary_size()

    def test_echo_filename_echoes_query(self, world):
        _, hits = world.query("norton full")
        names = [result.filename for hit, _ in hits
                 for result in hit.results]
        assert any("norton" in name and "full" in name for name in names)

    def test_responder_self_reports_private_address(self, world):
        # leaf0 is NATed and echo-infected; find its hit
        _, hits = world.query("anything here")
        leaf0 = world.leaves[0]
        from_leaf0 = [hit for hit, _ in hits
                      if hit.servent_guid == leaf0.servent_guid]
        assert from_leaf0
        assert from_leaf0[0].address == leaf0.address.advertised
        assert from_leaf0[0].push_needed

    def test_hits_carry_urns(self, world):
        _, hits = world.query("free music")
        for hit, _ in hits:
            for result in hit.results:
                assert result.sha1_urn.startswith("urn:sha1:")

    def test_duplicate_queries_suppressed(self, world):
        # each responder answers a given query GUID at most once
        _, hits = world.query("windows keygen")
        responders = [guid_hex(hit.servent_guid) for hit, _ in hits]
        assert len(responders) == len(set(responders))

    def test_offline_leaf_does_not_answer(self, world):
        target = world.leaves[1]  # echo-infected
        world.transport.set_online(target.endpoint_id, False)
        _, hits = world.query("some random query")
        assert all(hit.servent_guid != target.servent_guid
                   for hit, _ in hits)

    def test_clean_match_found(self, world):
        # query for a work some leaf certainly shares
        shared = next(iter(world.leaves[5].library))
        query = " ".join(sorted(shared.tokens)[:2])
        _, hits = world.query(query)
        urns = {result.sha1_urn for hit, _ in hits
                for result in hit.results}
        assert shared.sha1_urn in urns

    def test_stats_counters_move(self, world):
        world.query("photoshop crack")
        assert world.crawler.stats.hits_received_local > 0
        assert any(up.stats.queries_seen > 0 for up in world.ultrapeers)
        assert any(up.stats.hits_forwarded > 0 for up in world.ultrapeers)


class TestPingPong:
    def test_ping_answered_with_pong(self, world):
        crawler = world.crawler
        pongs = []
        original = crawler._on_envelope

        def spy(envelope):
            header, payload = parse_frame(envelope.payload)
            from repro.gnutella.messages import decode_payload
            message = decode_payload(header, payload)
            if isinstance(message, Pong):
                pongs.append(message)
            original(envelope)

        world.transport.endpoint(crawler.endpoint_id).on_message = spy
        crawler.send_ping()
        world.sim.run_until(world.sim.now + 30.0)
        assert pongs
        assert all(pong.port > 0 for pong in pongs)


class TestBye:
    def test_bye_drops_leaf_table(self, world):
        leaf = world.leaves[3]
        shield = world.network.servents[leaf.peer_ids[0]]
        assert leaf.endpoint_id in shield.leaf_tables
        leaf.send_bye()
        world.sim.run_until(world.sim.now + 10.0)
        assert leaf.endpoint_id not in shield.leaf_tables

    def test_departed_leaf_gets_no_queries(self, world):
        leaf = world.leaves[3]
        before = leaf.stats.queries_seen
        leaf.send_bye()
        world.sim.run_until(world.sim.now + 10.0)
        shared = next(iter(leaf.library))
        world.query(" ".join(sorted(shared.tokens)[:2]))
        assert leaf.stats.queries_seen == before


class TestRoles:
    def test_leaf_never_forwards(self, world):
        world.query("office serial")
        for leaf in world.leaves:
            assert leaf.stats.queries_forwarded_peers == 0
            assert leaf.stats.queries_forwarded_leaves == 0

    def test_decode_errors_counted_not_fatal(self, world):
        up = world.ultrapeers[0]
        world.transport.send(world.crawler.endpoint_id, up.endpoint_id,
                             b"garbage-bytes")
        world.sim.run_until(world.sim.now + 10.0)
        assert up.stats.decode_errors == 1
