"""Tests for the Query Routing Protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnutella.qrp import (DEFAULT_TABLE_BITS, QrpPatch, QrpReset,
                                QueryRouteTable, decode_qrp, encode_qrp,
                                qrp_hash)


class TestHash:
    def test_deterministic(self):
        assert qrp_hash("madonna") == qrp_hash("madonna")

    def test_case_insensitive(self):
        assert qrp_hash("MaDoNNa") == qrp_hash("madonna")

    def test_in_range(self):
        for bits in (8, 13, 16):
            for token in ("a", "photoshop", "x" * 30):
                assert 0 <= qrp_hash(token, bits) < (1 << bits)

    def test_spreads(self):
        slots = {qrp_hash(f"token{i}") for i in range(500)}
        assert len(slots) > 450  # few collisions at 2^16

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            qrp_hash("x", 0)
        with pytest.raises(ValueError):
            qrp_hash("x", 33)

    @given(st.text(min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_total_function(self, token):
        assert 0 <= qrp_hash(token) < (1 << DEFAULT_TABLE_BITS)


class TestQueryRouteTable:
    def test_match_requires_all_tokens(self):
        table = QueryRouteTable()
        table.add_name("madonna_angel.mp3")
        assert table.might_match("madonna")
        assert table.might_match("madonna angel")
        assert not table.might_match("madonna zebra")

    def test_short_tokens_ignored(self):
        table = QueryRouteTable()
        table.add_name("ab_cd_song.mp3")
        # 2-letter tokens are not routable; query of only short tokens
        # forwards conservatively
        assert table.might_match("ab cd")

    def test_empty_table_blocks(self):
        table = QueryRouteTable()
        assert not table.might_match("anything")

    def test_mark_all_matches_everything(self):
        table = QueryRouteTable()
        table.mark_all()
        for query in ("madonna", "zebra quantum xylophone", ""):
            assert table.might_match(query)
        assert table.set_count == table.size

    def test_build_from_replaces(self):
        table = QueryRouteTable()
        table.add_name("old_stuff.exe")
        table.build_from(["new_things.zip"])
        assert not table.might_match("old stuff")
        assert table.might_match("new things")

    def test_set_count(self):
        table = QueryRouteTable()
        assert table.set_count == 0
        table.add_keyword("photoshop")
        assert table.set_count == 1


class TestWireForm:
    def test_reset_roundtrip(self):
        reset = QrpReset(table_length=65536, infinity=7)
        assert decode_qrp(encode_qrp(reset)) == reset

    def test_patch_roundtrip(self):
        patch = QrpPatch(sequence_number=1, sequence_count=2,
                         entry_bits=8, data=b"\x00\x01" * 10)
        assert decode_qrp(encode_qrp(patch)) == patch

    def test_table_roundtrip_through_messages(self):
        table = QueryRouteTable()
        table.build_from(["photoshop_crack.zip", "madonna_angel.mp3"])
        wire = [encode_qrp(message) for message in table.to_messages()]
        rebuilt = QueryRouteTable.from_messages(
            decode_qrp(raw) for raw in wire)
        assert rebuilt == table
        assert rebuilt.might_match("photoshop crack")
        assert not rebuilt.might_match("zebra")

    def test_all_ones_survives_roundtrip(self):
        table = QueryRouteTable()
        table.mark_all()
        rebuilt = QueryRouteTable.from_messages(
            decode_qrp(encode_qrp(message))
            for message in table.to_messages())
        assert rebuilt.might_match("anything at all")

    def test_fragmentation(self):
        table = QueryRouteTable()
        messages = table.to_messages(fragment_slots=1024)
        patches = [m for m in messages if isinstance(m, QrpPatch)]
        assert len(patches) == table.size // 1024
        assert patches[0].sequence_count == len(patches)

    def test_decode_errors(self):
        with pytest.raises(ValueError):
            decode_qrp(b"")
        with pytest.raises(ValueError):
            decode_qrp(b"\x99")
        with pytest.raises(ValueError):
            decode_qrp(b"\x00\x01")  # short reset

    def test_overrun_patch_rejected(self):
        reset = QrpReset(table_length=16, infinity=7)
        patch = QrpPatch(1, 1, 8, b"\x00" * 32)
        with pytest.raises(ValueError):
            QueryRouteTable.from_messages([reset, patch])


class TestCompressedPatches:
    def test_zlib_patch_roundtrip(self):
        from repro.gnutella.qrp import COMPRESSOR_ZLIB
        patch = QrpPatch(sequence_number=1, sequence_count=1,
                         entry_bits=8, data=b"\x00\x01" * 512,
                         compressor=COMPRESSOR_ZLIB)
        wire = encode_qrp(patch)
        assert len(wire) < len(patch.data)  # actually compressed
        assert decode_qrp(wire) == patch

    def test_compressed_table_roundtrip(self):
        table = QueryRouteTable()
        table.build_from(["photoshop_crack.zip", "madonna_angel.mp3"])
        wire = [encode_qrp(message)
                for message in table.to_messages(compress=True)]
        rebuilt = QueryRouteTable.from_messages(
            decode_qrp(raw) for raw in wire)
        assert rebuilt.might_match("photoshop crack")
        assert not rebuilt.might_match("zebra")

    def test_compression_shrinks_sparse_tables(self):
        table = QueryRouteTable()
        table.add_keyword("lonely")
        plain = sum(len(encode_qrp(m)) for m in table.to_messages())
        packed = sum(len(encode_qrp(m))
                     for m in table.to_messages(compress=True))
        assert packed < plain / 20  # sparse tables compress enormously

    def test_corrupt_zlib_rejected(self):
        from repro.gnutella.qrp import COMPRESSOR_ZLIB
        raw = bytes([QrpPatch.variant, 1, 1, COMPRESSOR_ZLIB, 8]) + b"junk"
        with pytest.raises(ValueError):
            decode_qrp(raw)

    def test_unknown_compressor_rejected(self):
        raw = bytes([QrpPatch.variant, 1, 1, 0x42, 8]) + b"data"
        with pytest.raises(ValueError):
            decode_qrp(raw)
        with pytest.raises(ValueError):
            QrpPatch(1, 1, 8, b"x", compressor=0x42).encode()
