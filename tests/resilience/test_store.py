"""Tests for the crash-safe artifact store (frames, scans, atomic IO)."""

import json
import os

import pytest

from repro.resilience import (DurableAppender, FrameScan, atomic_write_bytes,
                              atomic_write_text, frame_line, parse_frame,
                              recover_frames, scan_frames)
from repro.resilience.store import FrameError


def write_journal(path, records, framed=True):
    with DurableAppender(path, framed=framed) as appender:
        for record in records:
            appender.append(record)
    return path.read_bytes()


class TestFrames:
    def test_round_trip(self):
        record = {"kind": "seed", "seed": 3, "metrics": {"x": 1.5}}
        assert parse_frame(frame_line(record)) == record

    def test_frame_is_one_json_line(self):
        line = frame_line({"a": [1, 2, 3]})
        assert "\n" not in line
        obj = json.loads(line)
        assert set(obj) == {"crc", "record"}

    def test_crc_detects_payload_flip(self):
        line = frame_line({"seed": 7})
        bad = line.replace('"seed":7', '"seed":8')
        with pytest.raises(FrameError, match="checksum"):
            parse_frame(bad)

    def test_not_json_rejected(self):
        with pytest.raises(FrameError, match="not JSON"):
            parse_frame('{"crc": "dead')

    def test_legacy_bare_record_passes_unverified(self):
        # journals written before framing existed must stay readable
        legacy = json.dumps({"kind": "seed", "seed": 1})
        assert parse_frame(legacy) == {"kind": "seed", "seed": 1}

    def test_key_order_does_not_matter(self):
        # the checksum covers the canonical serialization, so a
        # re-serialized frame with reordered keys still verifies
        line = frame_line({"b": 2, "a": 1})
        obj = json.loads(line)
        reordered = json.dumps({"record": obj["record"],
                                "crc": obj["crc"]})
        assert parse_frame(reordered) == {"a": 1, "b": 2}


class TestScan:
    def test_missing_file_is_empty_and_healthy(self, tmp_path):
        scan = scan_frames(tmp_path / "nope.jsonl")
        assert scan.records == [] and scan.healthy

    def test_clean_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, [{"seed": s} for s in range(5)])
        scan = scan_frames(path)
        assert [r["seed"] for r in scan.records] == list(range(5))
        assert scan.healthy and scan.legacy_records == 0

    def test_torn_tail_at_every_byte_offset(self, tmp_path):
        """The acceptance criterion: SIGKILL at any byte offset of an
        append loses at most the record being written."""
        path = tmp_path / "j.jsonl"
        records = [{"seed": s, "m": s * 0.5} for s in range(3)]
        data = write_journal(path, records)
        # boundaries of each committed line
        ends = []
        offset = 0
        while True:
            newline = data.find(b"\n", offset)
            if newline < 0:
                break
            ends.append(newline + 1)
            offset = newline + 1
        for cut in range(len(data) + 1):
            path.write_bytes(data[:cut])
            scan = scan_frames(path)
            committed = sum(1 for end in ends if end <= cut)
            # every newline-terminated record survives; a fragment that
            # is a complete frame minus its newline also verifies
            assert len(scan.records) in (committed, committed + 1)
            assert [r["seed"] for r in scan.records] == \
                [r["seed"] for r in records[:len(scan.records)]]
            if len(scan.records) == committed and cut not in (0, *ends):
                assert scan.torn_tail_bytes > 0
            if len(scan.records) > committed:
                assert scan.torn_tail_bytes == 0

    def test_corrupt_interior_line_is_quarantined_not_torn(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [frame_line({"seed": 0}), "garbage{{{",
                 frame_line({"seed": 2})]
        path.write_text("\n".join(lines) + "\n")
        scan = scan_frames(path)
        assert [r["seed"] for r in scan.records] == [0, 2]
        assert scan.corrupt_lines == [2]
        assert scan.torn_tail_bytes == 0

    def test_legacy_rows_counted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, [{"seed": 0}, {"seed": 1}], framed=False)
        scan = scan_frames(path)
        assert scan.legacy_records == 2 and scan.healthy


class TestRecover:
    def test_repair_truncates_torn_tail_in_place(self, tmp_path):
        path = tmp_path / "j.jsonl"
        data = write_journal(path, [{"seed": 0}, {"seed": 1}])
        path.write_bytes(data[:-4])
        before = recover_frames(path, repair=True)
        assert before.torn_tail_bytes > 0
        after = scan_frames(path)
        assert after.healthy and len(after.records) == 1

    def test_repair_quarantines_corrupt_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(frame_line({"seed": 0}) + "\n"
                        + "zzz-not-json\n"
                        + frame_line({"seed": 2}) + "\n")
        recover_frames(path, repair=True)
        after = scan_frames(path)
        assert after.healthy and [r["seed"] for r in after.records] == [0, 2]
        quarantine = path.with_name(path.name + ".quarantine")
        assert "zzz-not-json" in quarantine.read_text()

    def test_repair_upgrades_legacy_rows_to_frames(self, tmp_path):
        path = tmp_path / "j.jsonl"
        # legacy journal with one corrupt line forces a rebuild
        path.write_text(json.dumps({"seed": 0}) + "\n" + "broken{\n")
        recover_frames(path, repair=True)
        after = scan_frames(path)
        assert after.healthy and after.legacy_records == 0
        assert after.records == [{"seed": 0}]

    def test_scan_only_never_mutates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        data = write_journal(path, [{"seed": 0}])[:-3]
        path.write_bytes(data)
        recover_frames(path, repair=False)
        assert path.read_bytes() == data


class _TearingIO:
    """Hook that truncates the Nth write to a fixed byte count."""

    def __init__(self, tear_op, keep):
        self.tear_op = tear_op
        self.keep = keep
        self.ops = 0
        self.fsyncs = 0

    def apply_write(self, path, data):
        op = self.ops
        self.ops += 1
        if op == self.tear_op:
            return data[:self.keep], None
        return data, None

    def on_fsync(self, path):
        self.fsyncs += 1


class TestAtomicWrite:
    def test_replaces_whole_file(self, tmp_path):
        path = tmp_path / "a.json"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"
        assert list(tmp_path.iterdir()) == [path]  # no tmp leftovers

    def test_failed_write_keeps_previous_content(self, tmp_path):
        path = tmp_path / "a.json"
        atomic_write_text(path, "precious")

        class Exploding:
            def apply_write(self, p, data):
                return data[: len(data) // 2], OSError(28, "disk full")

            def on_fsync(self, p):
                pass

        with pytest.raises(OSError):
            atomic_write_bytes(path, b"replacement", io=Exploding())
        assert path.read_text() == "precious"
        assert list(tmp_path.iterdir()) == [path]

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "er" / "a.json"
        atomic_write_text(path, "x")
        assert path.read_text() == "x"


class TestDurableAppender:
    def test_unframed_rows_are_bare_json(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_journal(path, [{"virtual_time": 1.0}], framed=False)
        row = json.loads(path.read_text().strip())
        assert row == {"virtual_time": 1.0}  # top-level fields, no frame

    def test_torn_hook_shortens_file_by_exact_bytes(self, tmp_path):
        path = tmp_path / "j.jsonl"
        io = _TearingIO(tear_op=1, keep=5)
        with DurableAppender(path, io=io) as appender:
            appender.append({"seed": 0})
            appender.append({"seed": 1})   # torn to 5 bytes
            appender.append({"seed": 2})
        scan = scan_frames(path)
        # record 1's 5-byte stub welds onto record 2's line: one corrupt
        # line, records 0 intact -- exactly what the doctor quarantines
        assert {r["seed"] for r in scan.records} <= {0, 2}
        assert 0 in {r["seed"] for r in scan.records}
        assert not scan.healthy
        assert io.fsyncs == 3

    def test_error_from_hook_propagates_and_counts(self, tmp_path):
        path = tmp_path / "j.jsonl"

        class Failing:
            def apply_write(self, p, data):
                return data[:3], OSError(28, "disk full")

            def on_fsync(self, p):
                pass

        appender = DurableAppender(path, io=Failing())
        with pytest.raises(OSError):
            appender.append({"seed": 0})
        assert appender.errors == 1
        appender.close()

    def test_append_after_eaten_newline_does_not_weld(self, tmp_path):
        # crash ate only the final newline: the record is complete and
        # must survive, and the next append must start its own line
        path = tmp_path / "j.jsonl"
        data = write_journal(path, [{"seed": 0}])
        path.write_bytes(data[:-1])
        with DurableAppender(path) as appender:
            appender.append({"seed": 1})
        scan = scan_frames(path)
        assert scan.healthy
        assert [r["seed"] for r in scan.records] == [0, 1]

    def test_append_after_reopen_continues_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, [{"seed": 0}])
        write_journal_2 = DurableAppender(path)
        write_journal_2.append({"seed": 1})
        write_journal_2.close()
        scan = scan_frames(path)
        assert [r["seed"] for r in scan.records] == [0, 1]
