"""Tests for the supervised worker pool (heartbeats, watchdogs, requeue)."""

import time

import pytest

from repro.resilience import (HostIntervention, SupervisedKill,
                              SupervisionPolicy, supervised_map)

#: watchdog settings tight enough for fast tests but lax enough that a
#: loaded CI box never false-positives on a healthy worker
FAST = SupervisionPolicy(deadline_s=60.0, stall_timeout_s=2.0,
                         heartbeat_s=0.2, requeues=1, backoff_base_s=0.05,
                         backoff_cap_s=0.5, kill_grace_s=5.0)


def square(x):
    return x * x


def slow_square(x):
    # longer than FAST.stall_timeout_s: proves heartbeats keep a
    # healthy-but-slow worker alive
    time.sleep(3.0)
    return x * x


def boom(x):
    raise ValueError(f"boom on {x!r}")


def hang_item_two(item):
    if item == 2:
        return HostIntervention(kind="hang", seconds=60.0)
    return None


def stall_item_two(item):
    if item == 2:
        # shorter than the stall timeout: the worker must survive
        return HostIntervention(kind="stall", seconds=0.5)
    return None


def failure_marker(item, reason):
    return ("failed", item, reason)


class TestPolicy:
    def test_heartbeat_must_undercut_stall_timeout(self):
        with pytest.raises(ValueError, match="heartbeat"):
            SupervisionPolicy(stall_timeout_s=2.0, heartbeat_s=1.5)

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ValueError):
            SupervisionPolicy(deadline_s=0.0)

    def test_intervention_kind_validated(self):
        with pytest.raises(ValueError, match="kind"):
            HostIntervention(kind="explode", seconds=1.0)


class TestSupervisedMap:
    def test_results_in_input_order(self):
        assert supervised_map(square, [3, 1, 2], workers=3,
                              policy=FAST) == [9, 1, 4]

    def test_empty_items(self):
        assert supervised_map(square, [], policy=FAST) == []

    def test_heartbeats_keep_slow_workers_alive(self):
        kills = []
        result = supervised_map(slow_square, [4], workers=1, policy=FAST,
                                on_kill=kills.append)
        assert result == [16] and kills == []

    def test_hang_is_killed_requeued_then_degraded(self):
        kills = []
        start = time.monotonic()
        results = supervised_map(square, [1, 2, 3], workers=3, policy=FAST,
                                 intervention=hang_item_two,
                                 failure=failure_marker,
                                 on_kill=kills.append)
        elapsed = time.monotonic() - start
        assert results[0] == 1 and results[2] == 9
        failed, item, reason = results[1]
        assert (failed, item) == ("failed", 2) and "heartbeat" in reason
        assert [k.requeued for k in kills] == [True, False]
        assert all(isinstance(k, SupervisedKill) and k.item == 2
                   for k in kills)
        # the whole point: a 60s hang never blocks the pool for 60s
        assert elapsed < 30.0

    def test_short_stall_survives(self):
        kills = []
        results = supervised_map(square, [1, 2], workers=2, policy=FAST,
                                 intervention=stall_item_two,
                                 failure=failure_marker,
                                 on_kill=kills.append)
        assert results == [1, 4] and kills == []

    def test_worker_exception_propagates_with_traceback(self):
        with pytest.raises(RuntimeError, match="boom on 5"):
            supervised_map(boom, [5], workers=1, policy=FAST)

    def test_exhausted_requeues_without_failure_handler_raises(self):
        with pytest.raises(RuntimeError, match="killed"):
            supervised_map(square, [2], workers=1, policy=FAST,
                           intervention=hang_item_two)

    def test_on_result_fires_for_every_item(self):
        seen = {}
        supervised_map(square, [1, 2, 3], workers=2, policy=FAST,
                       on_result=lambda item, result: seen.__setitem__(
                           item, result))
        assert seen == {1: 1, 2: 4, 3: 9}
