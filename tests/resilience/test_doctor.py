"""Tests for the artifact doctor (classification, reporting, repair)."""

import json

from repro.resilience import DurableAppender, frame_line, run_doctor


def make_checkpoint(path, seeds=(1, 2)):
    with DurableAppender(path) as appender:
        appender.append({"kind": "header", "fingerprint": "f" * 64})
        for seed in seeds:
            appender.append({"kind": "seed", "seed": seed,
                             "metrics": {"prevalence": 0.5},
                             "snapshot": None})
    return path


class TestClassification:
    def test_checkpoint_detected_by_header(self, tmp_path):
        make_checkpoint(tmp_path / "cp.jsonl")
        report = run_doctor([tmp_path / "cp.jsonl"])
        artifact, = report.artifacts
        assert artifact.kind == "checkpoint"
        assert artifact.seeds == [1, 2]
        assert artifact.fingerprint == "f" * 64
        assert report.ok

    def test_plain_journal_is_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "run_journal.jsonl"
        path.write_text(json.dumps({"virtual_time": 1.0}) + "\n")
        report = run_doctor([path])
        assert report.artifacts[0].kind == "journal"

    def test_json_artifact_parse_checked(self, tmp_path):
        good = tmp_path / "BENCH_abc.json"
        good.write_text('{"results": {}}')
        bad = tmp_path / "trace.json"
        bad.write_text('{"traceEvents": [')
        report = run_doctor([good, bad])
        assert report.artifacts[0].healthy
        assert not report.artifacts[1].healthy

    def test_missing_path_reported(self, tmp_path):
        report = run_doctor([tmp_path / "ghost.jsonl"])
        assert report.artifacts[0].kind == "missing"
        assert not report.ok

    def test_directory_walk_finds_artifacts(self, tmp_path):
        make_checkpoint(tmp_path / "cp.jsonl")
        (tmp_path / "trace.json").write_text("{}")
        (tmp_path / "noise.txt").write_text("ignored")
        report = run_doctor([tmp_path])
        kinds = sorted(artifact.kind for artifact in report.artifacts)
        assert kinds == ["checkpoint", "json"]


class TestRepair:
    def test_torn_checkpoint_repaired_and_seeds_survive(self, tmp_path):
        path = make_checkpoint(tmp_path / "cp.jsonl", seeds=(1, 2, 3))
        data = path.read_bytes()
        path.write_bytes(data[:-9])  # tear into the seed-3 record
        detect = run_doctor([path])
        assert not detect.ok
        assert detect.artifacts[0].seeds == [1, 2]
        repair = run_doctor([path], repair=True)
        assert repair.artifacts[0].repaired
        healthy = run_doctor([path])
        assert healthy.ok and healthy.artifacts[0].seeds == [1, 2]

    def test_stale_tmp_deleted_only_on_repair(self, tmp_path):
        stale = tmp_path / "out.json.tmp.999"
        stale.write_text("half-written")
        run_doctor([tmp_path])
        assert stale.exists()
        run_doctor([tmp_path], repair=True)
        assert not stale.exists()

    def test_corrupt_record_quarantined_on_repair(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        path.write_text(
            frame_line({"kind": "header", "fingerprint": "x"}) + "\n"
            + "corrupted-line\n"
            + frame_line({"kind": "seed", "seed": 9, "metrics": {},
                          "snapshot": None}) + "\n")
        report = run_doctor([path], repair=True)
        assert report.artifacts[0].corrupt_records == 1
        assert (tmp_path / "cp.jsonl.quarantine").exists()
        assert run_doctor([path]).ok

    def test_unrepairable_json_still_flagged_after_repair(self, tmp_path):
        bad = tmp_path / "torn.json"
        bad.write_text('{"half":')
        report = run_doctor([bad], repair=True)
        assert not report.ok
        assert "regenerate" in report.artifacts[0].note


class TestRender:
    def test_render_mentions_recoverable_seeds(self, tmp_path):
        make_checkpoint(tmp_path / "cp.jsonl", seeds=(4,))
        text = run_doctor([tmp_path / "cp.jsonl"]).render()
        assert "resume recovers 1 completed seed" in text
        assert "all artifacts healthy" in text

    def test_render_counts_partial_repairs(self, tmp_path):
        (tmp_path / "torn.json").write_text("{bad")
        stale = tmp_path / "x.json.tmp.1"
        stale.write_text("t")
        text = run_doctor([tmp_path], repair=True).render()
        assert "1/2 damaged artifacts repaired" in text
        assert "regenerated" in text
