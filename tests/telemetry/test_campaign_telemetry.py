"""End-to-end telemetry: instrumented campaigns and replication merges.

One scaled-down instrumented Limewire campaign is shared module-wide;
everything here reads from the same run, mirroring how a real campaign
exports one registry, one journal and one span file.
"""

import json

import pytest

from repro.core.experiments import run_replications
from repro.core.measure.campaign import (CampaignConfig,
                                         run_limewire_campaign)
from repro.peers.profiles import GnutellaProfile
from repro.telemetry import CampaignTelemetry

CONFIG = CampaignConfig(seed=2, duration_days=0.1)
PROFILE_SCALE = 0.4


@pytest.fixture(scope="module")
def instrumented(tmp_path_factory):
    directory = tmp_path_factory.mktemp("telemetry")
    telemetry = CampaignTelemetry.for_directory(
        directory, "limewire", journal_interval_s=600.0)
    result = run_limewire_campaign(
        CONFIG, profile=GnutellaProfile().scaled(PROFILE_SCALE),
        telemetry=telemetry)
    paths = telemetry.write_outputs(directory, "limewire")
    return result, telemetry, paths


class TestMetricsExport:
    def test_metric_names_span_every_layer(self, instrumented):
        _, telemetry, _ = instrumented
        names = {metric.name for metric in telemetry.registry}
        assert len(names) >= 12
        layers = {"sim": False, "scanner": False, "downloader": False,
                  "collector": False}
        for name in names:
            prefix = name.split("_", 1)[0]
            if prefix in layers:
                layers[prefix] = True
        assert all(layers.values()), f"missing layers in {sorted(names)}"

    def test_prometheus_file_written(self, instrumented):
        _, telemetry, paths = instrumented
        text = paths["metrics"].read_text()
        assert text == telemetry.registry.render_prometheus()
        assert "sim_events_total" in text
        assert "scanner_cache_requests_total" in text

    def test_counters_agree_with_campaign_result(self, instrumented):
        result, telemetry, _ = instrumented
        registry = telemetry.registry
        assert (registry.get("collector_responses_total").value
                == len(result.store))
        # the scanner compat properties read the same registry counters
        engine = result.engine
        assert (registry.get("scanner_cache_requests_total").labels("hit")
                .value == engine.cache_hits)
        assert (registry.get("scanner_scans_total").value
                == engine.scans_performed)
        success = (registry.get("downloader_attempts_total")
                   .labels("success").value)
        assert success > 0
        assert success == registry.get("downloader_enqueued_total").value \
            - registry.get("downloader_attempts_total").labels("offline").value


class TestJournal:
    def test_journal_has_periodic_rows_with_probes(self, instrumented):
        result, _, paths = instrumented
        rows = [json.loads(line)
                for line in paths["journal"].read_text().splitlines()]
        assert len(rows) >= 3
        assert rows[-1]["final"] is True
        # virtual time advances monotonically at the configured cadence
        times = [row["virtual_time"] for row in rows]
        assert times == sorted(times)
        assert times[0] == pytest.approx(600.0)
        last = rows[-1]
        assert last["responses_collected"] == len(result.store)
        assert 0.0 <= last["scan_cache_hit_rate"] <= 1.0
        assert isinstance(last["top_malware"], list)
        assert last["top_malware"][0]["responses"] >= \
            last["top_malware"][-1]["responses"]


class TestSpans:
    def test_scan_spans_chain_back_to_query(self, instrumented):
        _, telemetry, _ = instrumented
        tracer = telemetry.tracer
        scans = tracer.spans("scan")
        assert scans
        for scan in scans[:50]:
            chain = [span.name for span in tracer.chain(scan)]
            assert chain == ["query", "response", "download", "scan"]

    def test_chains_cover_virtual_time(self, instrumented):
        _, telemetry, _ = instrumented
        tracer = telemetry.tracer
        durations = [tracer.chain_virtual_duration(scan)
                     for scan in tracer.spans("scan")]
        assert all(duration >= 0.0 for duration in durations)
        assert max(durations) > 0.0

    def test_span_file_round_trips(self, instrumented):
        _, telemetry, paths = instrumented
        rows = [json.loads(line)
                for line in paths["spans"].read_text().splitlines()]
        assert len(rows) == len(telemetry.tracer.spans())
        assert {row["name"] for row in rows} >= {
            "query", "response", "download", "scan"}


class TestDeterminism:
    def test_store_bit_identical_with_and_without_telemetry(
            self, instrumented, tmp_path):
        result, _, _ = instrumented
        plain = run_limewire_campaign(
            CONFIG, profile=GnutellaProfile().scaled(PROFILE_SCALE))
        assert len(plain.store) == len(result.store)
        assert ([record.to_json() for record in plain.store]
                == [record.to_json() for record in result.store])


def _stable_lines(path):
    """Prometheus lines minus the wall-clock-valued histogram.

    ``sim_callback_wall_seconds`` buckets real elapsed time, which
    varies run to run; everything else in a campaign registry is a
    function of the seed alone.
    """
    return [line for line in path.read_text().splitlines()
            if "sim_callback_wall_seconds" not in line]


class TestReplicationMerge:
    def test_merged_registry_deterministic_across_worker_counts(
            self, tmp_path):
        profile = GnutellaProfile().scaled(PROFILE_SCALE)
        seeds = (3, 4)
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = run_replications("limewire", seeds, CONFIG,
                                  profile=profile, workers=1,
                                  telemetry_dir=serial_dir)
        parallel = run_replications("limewire", seeds, CONFIG,
                                    profile=profile, workers=2,
                                    telemetry_dir=parallel_dir)
        for name in serial.metrics:
            assert (serial.metrics[name].values
                    == parallel.metrics[name].values)
        assert serial.telemetry_path.name == "limewire_merged_metrics.prom"
        assert (_stable_lines(serial.telemetry_path)
                == _stable_lines(parallel.telemetry_path))
        # merged counters sum across seeds: each seed's events land once
        merged = serial.registry.get("sim_events_total").value
        per_seed = []
        for seed in seeds:
            prom = serial_dir / f"limewire_seed{seed}_metrics.prom"
            assert prom.exists()
            journal = serial_dir / f"limewire_seed{seed}_journal.jsonl"
            assert journal.read_text().strip()
            total = 0.0
            for line in prom.read_text().splitlines():
                if line.startswith("sim_events_total{"):
                    total += float(line.rsplit(" ", 1)[1])
            per_seed.append(total)
        assert merged == sum(per_seed)
