"""Tests for the metric registry and its instruments."""

import pytest

from repro.telemetry.registry import (Counter, Gauge, Histogram,
                                      MetricRegistry, get_registry,
                                      set_registry)


@pytest.fixture()
def registry():
    return MetricRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("requests_total", "Requests.")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_cannot_decrease(self, registry):
        counter = registry.counter("requests_total", "Requests.")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_children_independent_and_cached(self, registry):
        counter = registry.counter("hits_total", "Hits.",
                                   labels=("outcome",))
        counter.labels("hit").inc(3)
        counter.labels("miss").inc()
        assert counter.labels("hit") is counter.labels("hit")
        assert counter.labels("hit").value == 3
        assert counter.labels("miss").value == 1
        assert counter.value == 4  # parent sums children

    def test_unlabelled_inc_on_labelled_counter_rejected(self, registry):
        counter = registry.counter("hits_total", "Hits.",
                                   labels=("outcome",))
        with pytest.raises(ValueError):
            counter.inc()

    def test_wrong_label_arity_rejected(self, registry):
        counter = registry.counter("hits_total", "Hits.",
                                   labels=("a", "b"))
        with pytest.raises(ValueError):
            counter.labels("only-one")

    def test_labels_on_unlabelled_rejected(self, registry):
        counter = registry.counter("plain_total", "Plain.")
        with pytest.raises(ValueError):
            counter.labels("x")


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("depth", "Depth.")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13

    def test_gauges_can_go_negative(self, registry):
        gauge = registry.gauge("delta", "Delta.")
        gauge.dec(3)
        assert gauge.value == -3


class TestHistogram:
    def test_bucket_edges_are_upper_inclusive(self, registry):
        # Prometheus `le` semantics: an observation exactly on a
        # boundary lands in that boundary's bucket
        histogram = registry.histogram("lat", "Latency.",
                                       buckets=(1.0, 2.0, 5.0))
        histogram.observe(1.0)   # le=1.0
        histogram.observe(1.5)   # le=2.0
        histogram.observe(2.0)   # le=2.0
        histogram.observe(5.1)   # +Inf
        assert histogram.bucket_counts() == [1, 2, 0, 1]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(9.6)

    def test_buckets_must_ascend(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("bad", "Bad.", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("bad2", "Bad.", buckets=())

    def test_labelled_histogram(self, registry):
        histogram = registry.histogram("lat", "Latency.", labels=("op",),
                                       buckets=(1.0,))
        histogram.labels("read").observe(0.5)
        histogram.labels("write").observe(2.0)
        assert histogram.count == 2
        assert histogram.labels("read").count == 1


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self, registry):
        first = registry.counter("a_total", "A.")
        second = registry.counter("a_total", "A.")
        assert first is second

    def test_lookup_of_existing_needs_no_help(self, registry):
        first = registry.counter("a_total", "A.")
        assert registry.counter("a_total") is first

    def test_help_required_when_creating(self, registry):
        # every new instrument must document itself: the /metrics
        # endpoint promises a # HELP line per family
        with pytest.raises(ValueError, match="help"):
            registry.counter("undocumented_total")
        with pytest.raises(ValueError, match="help"):
            registry.gauge("undocumented")
        with pytest.raises(ValueError, match="help"):
            registry.histogram("undocumented_seconds", buckets=(1.0,))

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("a_total", "A.")
        with pytest.raises(ValueError):
            registry.gauge("a_total", "A.")

    def test_label_mismatch_rejected(self, registry):
        registry.counter("a_total", "A.", labels=("x",))
        with pytest.raises(ValueError):
            registry.counter("a_total", "A.", labels=("y",))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("0bad", "Bad.")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "OK.", labels=("bad-label",))

    def test_default_registry_swap(self):
        original = get_registry()
        replacement = MetricRegistry()
        try:
            previous = set_registry(replacement)
            assert previous is original
            assert get_registry() is replacement
        finally:
            set_registry(original)


def _parse_prometheus(text):
    """Parse the exposition format back into {metric: {labels: value}}."""
    values = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, value = line.rsplit(" ", 1)
        values.setdefault(name_part, 0.0)
        values[name_part] = float(value)
    return values


class TestPrometheusRendering:
    def test_round_trip(self, registry):
        counter = registry.counter("hits_total", "Cache hits.",
                                   labels=("outcome",))
        counter.labels("hit").inc(7)
        counter.labels("miss").inc(2)
        registry.gauge("depth", "Queue depth.").set(42)
        histogram = registry.histogram("lat", "Latency.",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(3.0)

        text = registry.render_prometheus()
        parsed = _parse_prometheus(text)
        assert parsed['hits_total{outcome="hit"}'] == 7
        assert parsed['hits_total{outcome="miss"}'] == 2
        assert parsed["depth"] == 42
        # _bucket lines are cumulative
        assert parsed['lat_bucket{le="0.1"}'] == 1
        assert parsed['lat_bucket{le="1"}'] == 2
        assert parsed['lat_bucket{le="+Inf"}'] == 3
        assert parsed["lat_count"] == 3
        assert parsed["lat_sum"] == pytest.approx(3.55)

    def test_help_and_type_lines(self, registry):
        registry.counter("hits_total", "Cache hits.")
        text = registry.render_prometheus()
        assert "# HELP hits_total Cache hits." in text
        assert "# TYPE hits_total counter" in text

    def test_every_family_gets_help_and_type(self, registry):
        # conformance: # HELP and # TYPE precede every family, exactly
        # once, in family order
        registry.counter("a_total", "A.")
        registry.gauge("b_depth", "B.")
        registry.histogram("c_seconds", "C.", buckets=(1.0,))
        text = registry.render_prometheus()
        for name in ("a_total", "b_depth", "c_seconds"):
            assert text.count(f"# HELP {name} ") == 1
            assert text.count(f"# TYPE {name} ") == 1
            assert text.index(f"# HELP {name} ") < text.index(
                f"# TYPE {name} ")

    def test_label_values_escaped(self, registry):
        counter = registry.counter("q_total", "Queries.",
                                   labels=("query",))
        counter.labels('say "hi"\nthere\\').inc()
        text = registry.render_prometheus()
        assert r'query="say \"hi\"\nthere\\"' in text

    def test_sorted_and_deterministic(self, registry):
        registry.counter("z_total", "Z.").inc()
        registry.counter("a_total", "A.").inc()
        first = registry.render_prometheus()
        assert first.index("a_total") < first.index("z_total")
        assert first == registry.render_prometheus()

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render_prometheus() == ""


class TestSnapshotMerge:
    def _filled(self, hit=1, depth=5.0, observations=(0.5,)):
        registry = MetricRegistry()
        registry.counter("hits_total", "Hits.", labels=("outcome",)) \
            .labels("hit").inc(hit)
        registry.gauge("depth", "Depth.").set(depth)
        histogram = registry.histogram("lat", "Latency.", buckets=(1.0,))
        for value in observations:
            histogram.observe(value)
        return registry

    def test_snapshot_is_plain_data(self):
        import json

        snapshot = self._filled().snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_counters_and_histograms_sum(self):
        parent = MetricRegistry()
        parent.merge_snapshot(self._filled(hit=2,
                                           observations=(0.5,)).snapshot())
        parent.merge_snapshot(self._filled(hit=3,
                                           observations=(2.0,)).snapshot())
        assert parent.get("hits_total").value == 5
        histogram = parent.get("lat")
        assert histogram.count == 2
        assert histogram.sum == pytest.approx(2.5)
        assert histogram.bucket_counts() == [1, 1]

    def test_gauges_keep_max(self):
        parent = MetricRegistry()
        parent.merge_snapshot(self._filled(depth=9.0).snapshot())
        parent.merge_snapshot(self._filled(depth=4.0).snapshot())
        assert parent.get("depth").value == 9.0

    def test_merge_into_empty_equals_source(self):
        source = self._filled(hit=4, observations=(0.1, 3.0))
        parent = MetricRegistry()
        parent.merge_snapshot(source.snapshot())
        assert (parent.render_prometheus()
                == source.render_prometheus())

    def test_merge_determinism(self):
        snapshots = [self._filled(hit=n, observations=(0.1 * n,)).snapshot()
                     for n in (1, 2, 3)]
        first = MetricRegistry()
        second = MetricRegistry()
        for snapshot in snapshots:
            first.merge_snapshot(snapshot)
        for snapshot in snapshots:
            second.merge_snapshot(snapshot)
        assert (first.render_prometheus()
                == second.render_prometheus())
