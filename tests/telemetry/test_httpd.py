"""Tests for the live observability HTTP server and its hub."""

import json
import re
import threading
import urllib.request

import pytest

from repro.telemetry import CampaignTelemetry
from repro.telemetry.httpd import (ObservatoryHub, TelemetryServer,
                                   tail_journal)
from repro.telemetry.registry import MetricRegistry


def fetch(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read()


@pytest.fixture()
def served():
    """A started server over one live bundle; stopped after the test."""
    telemetry = CampaignTelemetry()
    hub = ObservatoryHub(title="test run")
    hub.add_campaign("limewire", telemetry)
    server = TelemetryServer(hub, port=0).start()
    try:
        yield server, hub, telemetry
    finally:
        server.stop()


class TestTailJournal:
    def test_missing_file_is_empty(self, tmp_path):
        assert tail_journal(tmp_path / "nope.jsonl") == []

    def test_returns_last_rows_oldest_first(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("".join(json.dumps({"n": n}) + "\n"
                                for n in range(10)))
        rows = tail_journal(path, limit=3)
        assert [row["n"] for row in rows] == [7, 8, 9]

    def test_partial_last_line_is_skipped(self, tmp_path):
        # a writer mid-line: the unterminated record must not break
        # the tail or appear truncated
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps({"n": 1}) + "\n"
                        + json.dumps({"n": 2}) + "\n"
                        + '{"n": 3, "half')
        rows = tail_journal(path)
        assert [row["n"] for row in rows] == [1, 2]

    def test_seek_truncated_first_line_is_dropped(self, tmp_path):
        # when the file is larger than max_bytes the seek lands
        # mid-record; that first fragment must be discarded
        path = tmp_path / "run.jsonl"
        path.write_text("".join(
            json.dumps({"n": n, "pad": "x" * 100}) + "\n"
            for n in range(50)))
        rows = tail_journal(path, limit=50, max_bytes=500)
        assert rows  # something survived
        assert all(set(row) == {"n", "pad"} for row in rows)
        assert [row["n"] for row in rows] == list(
            range(rows[0]["n"], 50))

    def test_non_object_rows_are_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('[1,2]\n"str"\n' + json.dumps({"ok": True}) + "\n")
        assert tail_journal(path) == [{"ok": True}]


class TestEndpoints:
    def test_healthz(self, served):
        server, _hub, _telemetry = served
        status, _headers, body = fetch(server.url + "healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["campaigns"] == 1

    def test_metrics_renders_prometheus(self, served):
        server, _hub, telemetry = served
        telemetry.registry.counter(
            "demo_total", "Demo.", labels=("kind",)).labels("a").inc(3)
        status, headers, body = fetch(server.url + "metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert 'demo_total{kind="a"} 3' in text

    def test_metrics_parses_under_prometheus_text_rules(self, served):
        # conformance: every sample line matches the exposition
        # grammar, every family has exactly one HELP and one TYPE
        # (no duplicate families), and label escaping round-trips
        server, _hub, telemetry = served
        telemetry.registry.counter(
            "esc_total", "Escapes.", labels=("q",)).labels(
                'quote " slash \\ newline \n').inc()
        _status, _headers, body = fetch(server.url + "metrics")
        text = body.decode("utf-8")
        sample_re = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*")*\})?'
            r' [0-9eE.+-]+(?:[+-]?Inf|NaN)?$')
        families = []
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("# HELP "):
                families.append(line.split(" ", 3)[2])
                continue
            if line.startswith("# TYPE "):
                name, kind = line.split(" ", 3)[2:4]
                assert kind in ("counter", "gauge", "histogram")
                assert name == families[-1]
                continue
            assert sample_re.match(line), f"unparseable line: {line!r}"
        assert len(families) == len(set(families)), "duplicate family"
        assert "esc_total" in families
        assert r'q="quote \" slash \\ newline \n"' in text

    def test_snapshot_json(self, served):
        server, hub, telemetry = served
        telemetry.registry.gauge("depth", "Depth.").set(7)
        hub.set_status(network="limewire")
        payload = json.loads(fetch(server.url + "snapshot.json")[2])
        assert payload["status"]["network"] == "limewire"
        names = {entry["name"]
                 for entry in payload["registry"]["metrics"]}
        assert "depth" in names

    def test_journal_tail_endpoint(self, served, tmp_path):
        server, hub, _telemetry = served
        path = tmp_path / "w.jsonl"
        path.write_text("".join(json.dumps({"n": n}) + "\n"
                                for n in range(5)))
        hub.add_journal("w", path)
        payload = json.loads(fetch(server.url + "journal?n=2")[2])
        assert [row["n"] for row in payload["journals"]["w"]] == [3, 4]

    def test_dashboard_html(self, served):
        server, _hub, telemetry = served
        telemetry.registry.gauge(
            "sim_virtual_time_seconds", "Clock.").set(1234.5)
        status, headers, body = fetch(server.url)
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        text = body.decode("utf-8")
        assert "test run" in text
        assert "1,234.5 s" in text  # server-rendered initial value
        assert "dashboard.json" in text  # the polling script

    def test_dashboard_json_state(self, served):
        server, _hub, telemetry = served
        telemetry.registry.counter(
            "downloader_malicious_total",
            "Downloads whose scan came back dirty.").inc(4)
        state = json.loads(fetch(server.url + "dashboard.json")[2])
        assert state["infections"] == 4

    def test_unknown_route_404(self, served):
        server, _hub, _telemetry = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(server.url + "nope")
        assert excinfo.value.code == 404

    def test_trace_json_endpoint(self, served):
        server, _hub, telemetry = served
        span = telemetry.tracer.start("query", 1.0, query="x")
        telemetry.tracer.end(span, 2.0)
        payload = json.loads(fetch(server.url + "trace.json")[2])
        names = {event["name"] for event in payload["traceEvents"]}
        assert "query" in names

    def test_hotspots_json_endpoint(self, served):
        server, _hub, telemetry = served
        telemetry.kernel.observe_callback("scan", 0.001)
        telemetry.registry.get("sim_events_total").labels("scan").inc(64)
        payload = json.loads(fetch(server.url + "hotspots.json")[2])
        assert payload["hotspots"][0]["label"] == "scan"


class TestHubAggregation:
    def test_merged_registry_includes_recorded_snapshots(self):
        hub = ObservatoryHub()
        for seed in (2, 1):
            registry = MetricRegistry()
            registry.counter("hits_total", "Hits.").inc(seed * 10)
            hub.record_snapshot(seed, registry.snapshot())
        merged = hub.merged_registry()
        assert merged.get("hits_total").value == 30

    def test_merge_order_is_seed_order_not_arrival_order(self):
        def merged_text(order):
            hub = ObservatoryHub()
            for seed in order:
                registry = MetricRegistry()
                registry.gauge("depth", "Depth.").set(float(seed))
                registry.counter("hits_total", "Hits.").inc(seed)
                hub.record_snapshot(seed, registry.snapshot())
            return hub.merged_registry().render_prometheus()

        assert merged_text([3, 1, 2]) == merged_text([1, 2, 3])

    def test_record_snapshot_replaces_same_key(self):
        hub = ObservatoryHub()
        for total in (5, 9):
            registry = MetricRegistry()
            registry.counter("hits_total", "Hits.").inc(total)
            hub.record_snapshot(1, registry.snapshot())
        assert hub.merged_registry().get("hits_total").value == 9

    def test_live_and_recorded_merge_together(self):
        telemetry = CampaignTelemetry()
        telemetry.registry.counter("hits_total", "Hits.").inc(2)
        worker = MetricRegistry()
        worker.counter("hits_total", "Hits.").inc(3)
        hub = ObservatoryHub()
        hub.add_campaign("live", telemetry)
        hub.record_snapshot(7, worker.snapshot())
        assert hub.merged_registry().get("hits_total").value == 5


class TestConcurrentScrapes:
    def test_parallel_scrapes_during_writes(self, served):
        # N threads hammer /metrics while the "campaign" thread mutates
        # the registry: every response must be a complete, parseable
        # exposition body (the hub retries snapshots mid-mutation)
        server, _hub, telemetry = served
        counter = telemetry.registry.counter(
            "churn_total", "Churn.", labels=("who",))
        stop = threading.Event()

        def writer():
            n = 0
            while not stop.is_set():
                counter.labels(f"peer-{n % 200}").inc()
                n += 1

        failures = []

        def scraper():
            for _ in range(20):
                try:
                    status, _headers, body = fetch(server.url + "metrics")
                    assert status == 200
                    text = body.decode("utf-8")
                    if "# HELP churn_total" not in text:
                        failures.append("missing family")
                except Exception as error:  # noqa: BLE001
                    failures.append(repr(error))

        writer_thread = threading.Thread(target=writer, daemon=True)
        writer_thread.start()
        scrapers = [threading.Thread(target=scraper) for _ in range(4)]
        try:
            for thread in scrapers:
                thread.start()
            for thread in scrapers:
                thread.join(timeout=60)
        finally:
            stop.set()
            writer_thread.join(timeout=10)
        assert failures == []

    def test_scrapes_never_mutate_the_source_registry(self, served):
        server, _hub, telemetry = served
        telemetry.registry.counter("hits_total", "Hits.").inc(5)
        before = telemetry.registry.render_prometheus()
        for _ in range(5):
            fetch(server.url + "metrics")
            fetch(server.url + "snapshot.json")
        assert telemetry.registry.render_prometheus() == before


class TestServerLifecycle:
    def test_ephemeral_port_and_url(self):
        hub = ObservatoryHub()
        server = TelemetryServer(hub, port=0)
        assert not server.running
        server.start()
        try:
            assert server.running
            assert server.port > 0
            assert server.url.endswith(f":{server.port}/")
        finally:
            server.stop()
        assert not server.running

    def test_stop_is_idempotent(self):
        server = TelemetryServer(ObservatoryHub(), port=0).start()
        server.stop()
        server.stop()

    def test_context_manager(self):
        with TelemetryServer(ObservatoryHub(), port=0) as server:
            status, _headers, _body = fetch(server.url + "healthz")
            assert status == 200
        assert not server.running


class TestLifecycleRace:
    """Regression for the start/stop vs scrape-thread race (CONC001).

    The server-handle fields (``_httpd``/``_thread``) used to be set
    and cleared with no lock while handler threads and `serve`-style
    callers read ``running``/``port``/``url``; detlint's concurrency
    pass flagged it and the fields now go through ``_state_lock``.
    This test hammers exactly that interleaving.
    """

    def test_lifecycle_churn_under_concurrent_state_reads(self):
        hub = ObservatoryHub(title="race test")
        server = TelemetryServer(hub, port=0)
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    # all three go through the state lock; they must
                    # never raise or see a half-built server
                    running = server.running
                    port = server.port
                    url = server.url
                    assert isinstance(running, bool)
                    assert isinstance(port, int)
                    assert url.startswith("http://")
                except Exception as error:  # noqa: BLE001
                    failures.append(repr(error))
                    return

        readers = [threading.Thread(target=reader, daemon=True)
                   for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for _ in range(10):
                server.start()
                assert server.running
                server.stop()
                assert not server.running
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=10)
        assert failures == []

    def test_scrapes_survive_shutdown_mid_flight(self):
        # handler threads in flight while stop() runs: every request
        # either completes with 200 or fails with a socket error --
        # never a hang, never a torn read of the handle fields
        telemetry = CampaignTelemetry()
        telemetry.registry.counter("hits_total", "Hits.").inc()
        hub = ObservatoryHub(title="race test")
        hub.add_campaign("limewire", telemetry)
        server = TelemetryServer(hub, port=0).start()
        url = server.url
        results = []

        def scraper():
            while True:
                try:
                    status, _headers, _body = fetch(url + "metrics",
                                                    timeout=5)
                    results.append(status)
                except Exception:  # noqa: BLE001 - refused after stop
                    results.append(None)
                    return

        scrapers = [threading.Thread(target=scraper, daemon=True)
                    for _ in range(4)]
        for thread in scrapers:
            thread.start()
        # let them get some scrapes in, then yank the server
        while len(results) < 8:
            pass
        server.stop()
        for thread in scrapers:
            thread.join(timeout=15)
            assert not thread.is_alive(), "scraper hung across stop()"
        assert all(status == 200 for status in results
                   if status is not None)

    def test_double_start_returns_same_server(self):
        server = TelemetryServer(ObservatoryHub(), port=0).start()
        try:
            port = server.port
            assert server.start() is server
            assert server.port == port
        finally:
            server.stop()
