"""Tests for explicit-parent span tracing."""

import json

import pytest

from repro.telemetry.spans import Span, SpanTracer


@pytest.fixture()
def tracer():
    return SpanTracer()


class TestSpanLifecycle:
    def test_start_and_end(self, tracer):
        span = tracer.start("query", 10.0, criteria="mp3")
        assert not span.finished
        assert span.virtual_duration == 0.0
        tracer.end(span, 25.0, hits=3)
        assert span.finished
        assert span.virtual_duration == 15.0
        assert span.attributes == {"criteria": "mp3", "hits": 3}

    def test_end_is_idempotent(self, tracer):
        span = tracer.start("query", 10.0)
        tracer.end(span, 25.0)
        tracer.end(span, 99.0)  # second end ignored
        assert span.end_virtual == 25.0

    def test_end_accepts_none(self, tracer):
        tracer.end(None, 5.0)  # dropped spans need no special-casing

    def test_wall_duration_nonnegative(self, tracer):
        span = tracer.start("query", 0.0)
        tracer.end(span, 1.0)
        assert span.wall_duration >= 0.0


class TestNesting:
    def _chain(self, tracer):
        """A query -> response -> download -> scan chain over virtual hours."""
        query = tracer.start("query", 0.0)
        tracer.end(query, 0.0)
        response = tracer.start("response", 120.0, parent=query)
        tracer.end(response, 120.0)
        download = tracer.start("download", 130.0, parent=response)
        scan = tracer.start("scan", 3600.0, parent=download)
        tracer.end(scan, 3601.0)
        tracer.end(download, 3601.0)
        return query, response, download, scan

    def test_chain_walks_to_root(self, tracer):
        query, response, download, scan = self._chain(tracer)
        chain = tracer.chain(scan)
        assert [span.name for span in chain] == [
            "query", "response", "download", "scan"]
        assert chain[0] is query

    def test_chain_by_id(self, tracer):
        *_, scan = self._chain(tracer)
        assert tracer.chain(scan.span_id)[-1] is scan

    def test_chain_virtual_duration_spans_virtual_hours(self, tracer):
        *_, scan = self._chain(tracer)
        # root query started at t=0, leaf scan ended at t=3601
        assert tracer.chain_virtual_duration(scan) == 3601.0

    def test_parent_accepts_span_or_id(self, tracer):
        parent = tracer.start("query", 0.0)
        by_object = tracer.start("response", 1.0, parent=parent)
        by_id = tracer.start("response", 1.0, parent=parent.span_id)
        assert by_object.parent_id == by_id.parent_id == parent.span_id

    def test_chain_survives_parent_cycle(self, tracer):
        span = tracer.start("query", 0.0)
        span.parent_id = span.span_id  # corrupt: self-parent
        assert tracer.chain(span) == [span]


class TestCapacity:
    def test_drops_past_capacity(self):
        tracer = SpanTracer(capacity=2)
        first = tracer.start("a", 0.0)
        second = tracer.start("b", 0.0)
        third = tracer.start("c", 0.0)
        assert first is not None and second is not None
        assert third is None
        assert tracer.dropped == 1
        assert len(tracer) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanTracer(capacity=0)


class TestQueriesAndExport:
    def test_spans_filter_by_name(self, tracer):
        tracer.start("query", 0.0)
        tracer.start("scan", 0.0)
        tracer.start("query", 1.0)
        assert len(tracer.spans("query")) == 2
        assert len(tracer.spans()) == 3

    def test_close_open(self, tracer):
        open_span = tracer.start("download", 0.0)
        done = tracer.start("scan", 0.0)
        tracer.end(done, 1.0)
        closed = tracer.close_open(9.0)
        assert closed == 1
        assert open_span.end_virtual == 9.0
        assert open_span.attributes.get("closed_at_teardown") is True

    def test_to_jsonl_round_trip(self, tracer, tmp_path):
        span = tracer.start("query", 0.0, criteria="mp3")
        tracer.end(span, 4.0)
        path = tmp_path / "spans.jsonl"
        count = tracer.to_jsonl(path)
        assert count == 1
        rows = [json.loads(line)
                for line in path.read_text().splitlines()]
        assert rows[0]["name"] == "query"
        assert rows[0]["virtual_duration"] == 4.0
        assert rows[0]["attributes"] == {"criteria": "mp3"}
