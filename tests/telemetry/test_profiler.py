"""Tests for the kernel hotspot profiler report."""

import json

import pytest

from repro.telemetry.kernel import KernelTelemetry
from repro.telemetry.profiler import (CALLBACK_HISTOGRAM, EVENTS_COUNTER,
                                      SAMPLE_INTERVAL_GAUGE, Hotspot,
                                      HotspotReport, _percentile)
from repro.telemetry.registry import MetricRegistry


def build_registry(sample_every=64, *, gauge=True):
    """A registry with the kernel metrics populated by hand.

    Two labels: ``scan`` is slow but rare, ``churn`` is fast but runs
    for every peer -- the estimate must rank churn first.
    """
    registry = MetricRegistry()
    histogram = registry.histogram(
        CALLBACK_HISTOGRAM, "Sampled callback wall time.",
        labels=("label",), buckets=(0.001, 0.01, 0.1))
    events = registry.counter(EVENTS_COUNTER, "Events run.",
                              labels=("label",))
    if gauge:
        registry.gauge(SAMPLE_INTERVAL_GAUGE,
                       "Callback sampling interval.").set(sample_every)
    for _ in range(4):
        histogram.labels("scan").observe(0.05)  # mean 0.05s
    events.labels("scan").inc(100)              # est 5.0s
    for _ in range(8):
        histogram.labels("churn").observe(0.005)  # mean 0.005s
    events.labels("churn").inc(10_000)            # est 50.0s
    return registry


class TestPercentile:
    def test_interpolates_within_the_winning_bucket(self):
        # 10 observations all in the (0.0, 1.0] bucket: p50 lands at
        # the linear midpoint of that bucket
        assert _percentile((1.0, 2.0), [10, 0, 0], 10, 0.5) == \
            pytest.approx(0.5)

    def test_spans_buckets_cumulatively(self):
        # 5 in (0,1], 5 in (1,2]: p90 is 80% into the second bucket
        assert _percentile((1.0, 2.0), [5, 5, 0], 10, 0.9) == \
            pytest.approx(1.8)

    def test_inf_bucket_reports_last_finite_bound(self):
        assert _percentile((1.0, 2.0), [0, 0, 10], 10, 0.5) == 2.0

    def test_empty_distribution_is_zero(self):
        assert _percentile((1.0,), [0, 0], 0, 0.5) == 0.0


class TestFromRegistry:
    def test_ranked_by_estimated_total_wall_time(self):
        report = HotspotReport.from_registry(build_registry())
        assert [row.label for row in report.hotspots] == ["churn", "scan"]

    def test_estimate_is_sampled_mean_times_event_count(self):
        report = HotspotReport.from_registry(build_registry())
        by_label = {row.label: row for row in report.hotspots}
        scan = by_label["scan"]
        assert scan.sampled == 4
        assert scan.mean_s == pytest.approx(0.05)
        assert scan.events == 100
        assert scan.estimated_total_s == pytest.approx(
            scan.mean_s * scan.events)

    def test_shares_sum_to_one(self):
        report = HotspotReport.from_registry(build_registry())
        assert sum(row.share for row in report.hotspots) == \
            pytest.approx(1.0)
        assert report.estimated_total_s == pytest.approx(55.0)

    def test_sample_every_read_from_gauge(self):
        report = HotspotReport.from_registry(build_registry(32))
        assert report.sample_every == 32

    def test_sample_every_defaults_without_gauge(self):
        report = HotspotReport.from_registry(build_registry(gauge=False))
        assert report.sample_every == 64

    def test_empty_registry_is_an_empty_report(self):
        report = HotspotReport.from_registry(MetricRegistry())
        assert report.hotspots == ()
        assert report.estimated_total_s == 0.0

    def test_ties_break_alphabetically(self):
        registry = MetricRegistry()
        histogram = registry.histogram(
            CALLBACK_HISTOGRAM, "Sampled callback wall time.",
            labels=("label",), buckets=(0.001,))
        events = registry.counter(EVENTS_COUNTER, "Events run.",
                                  labels=("label",))
        for label in ("b", "a"):
            histogram.labels(label).observe(0.0005)
            events.labels(label).inc(10)
        report = HotspotReport.from_registry(registry)
        assert [row.label for row in report.hotspots] == ["a", "b"]

    def test_works_on_real_kernel_telemetry(self):
        registry = MetricRegistry()
        kernel = KernelTelemetry(registry, sample_every=16)
        kernel.observe_callback("scan", 0.002)
        registry.get(EVENTS_COUNTER).labels("scan").inc(16)
        report = HotspotReport.from_registry(registry)
        assert report.sample_every == 16
        assert report.hotspots[0].label == "scan"


class TestFromSnapshot:
    def test_round_trips_through_snapshot(self):
        registry = build_registry()
        direct = HotspotReport.from_registry(registry)
        via_snapshot = HotspotReport.from_snapshot(registry.snapshot())
        assert via_snapshot == direct

    def test_unwraps_served_snapshot_body(self):
        # /snapshot.json nests the registry under a "registry" key
        registry = build_registry()
        body = {"title": "x", "registry": registry.snapshot()}
        report = HotspotReport.from_snapshot(body)
        assert report == HotspotReport.from_registry(registry)


class TestRendering:
    def test_render_table(self):
        text = HotspotReport.from_registry(build_registry()).render()
        lines = text.splitlines()
        assert "1-in-64" in lines[0]
        assert lines[1].split()[:2] == ["label", "events"]
        assert lines[2].startswith("churn")
        assert "90.9%" in lines[2]
        assert lines[3].startswith("scan")

    def test_render_truncates_and_counts_the_rest(self):
        text = HotspotReport.from_registry(build_registry()).render(top=1)
        assert "scan" not in text
        assert "... 1 more label(s)" in text

    def test_to_dict_and_json(self, tmp_path):
        report = HotspotReport.from_registry(build_registry())
        payload = report.to_dict()
        assert payload["sample_every"] == 64
        assert [row["label"] for row in payload["hotspots"]] == [
            "churn", "scan"]
        path = tmp_path / "out" / "hotspots.json"
        report.to_json(path)
        assert json.loads(path.read_text()) == payload

    def test_hotspot_rows_are_immutable(self):
        report = HotspotReport.from_registry(build_registry())
        with pytest.raises(AttributeError):
            report.hotspots[0].share = 2.0

    def test_hotspot_to_dict_fields(self):
        row = Hotspot(label="x", sampled=1, sampled_total_s=0.1,
                      mean_s=0.1, p50_s=0.1, p95_s=0.1, events=2,
                      estimated_total_s=0.2, share=1.0)
        assert set(row.to_dict()) == {
            "label", "sampled", "sampled_total_s", "mean_s", "p50_s",
            "p95_s", "events", "estimated_total_s", "share"}
