"""Tests for the causal trace exporter (Chrome trace-event JSON)."""

import json

import pytest

from repro.core.measure.campaign import (CampaignConfig,
                                         run_limewire_campaign)
from repro.peers.profiles import GnutellaProfile
from repro.telemetry import CampaignTelemetry
from repro.telemetry.spans import SpanTracer
from repro.telemetry.tracer import (CATEGORY_TIDS, build_trace,
                                    chain_roots, infected_roots,
                                    write_trace)

VALID_PHASES = {"X", "M", "s", "f"}


def make_chain(tracer, start, *, clean=True, malware=None):
    """Record one query->response->download->scan chain; returns root id."""
    query = tracer.start("query", start, query="trojan")
    response = tracer.start("response", start + 1.0, parent=query)
    download = tracer.start("download", start + 2.0, parent=response,
                            **({"malware": malware} if malware else {}))
    scan_attrs = {"clean": clean}
    if malware:
        scan_attrs["malware"] = malware
    scan = tracer.start("scan", start + 3.0, parent=download, **scan_attrs)
    for span, offset in ((query, 4.0), (response, 1.5), (download, 3.0),
                         (scan, 3.5)):
        tracer.end(span, start + offset)
    return query.span_id


class TestChainRoots:
    def test_every_span_maps_to_its_chain_root(self):
        tracer = SpanTracer()
        root_a = make_chain(tracer, 0.0)
        root_b = make_chain(tracer, 100.0)
        roots = chain_roots(tracer)
        assert len(roots) == 8
        assert sorted(set(roots.values())) == [root_a, root_b]
        for span in tracer.spans():
            expected = root_a if span.start_virtual < 100.0 else root_b
            assert roots[span.span_id] == expected

    def test_dangling_parent_becomes_own_root(self):
        # a span whose parent was dropped at capacity must not vanish
        tracer = SpanTracer()
        orphan = tracer.start("scan", 5.0, parent=999_999)
        roots = chain_roots(tracer)
        assert roots[orphan.span_id] == orphan.span_id

    def test_infected_roots_flags_dirty_scans_and_malicious_downloads(self):
        tracer = SpanTracer()
        make_chain(tracer, 0.0, clean=True)
        dirty = make_chain(tracer, 100.0, clean=False)
        carrier = make_chain(tracer, 200.0, malware="W32.Gnuman")
        assert infected_roots(tracer) == {dirty, carrier}


class TestBuildTrace:
    def test_events_are_schema_valid(self):
        tracer = SpanTracer()
        make_chain(tracer, 0.0, clean=False)
        trace = build_trace(tracer)
        assert isinstance(trace["traceEvents"], list)
        assert trace["displayTimeUnit"] == "ms"
        for event in trace["traceEvents"]:
            assert event["ph"] in VALID_PHASES
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert isinstance(event["ts"], float)
                assert event["dur"] >= 1.0  # floored, never invisible
            if event["ph"] in ("s", "f"):
                assert event["cat"] == "causal"

    def test_tracks_follow_category_map(self):
        tracer = SpanTracer()
        make_chain(tracer, 0.0)
        spans = [event for event in build_trace(tracer)["traceEvents"]
                 if event["ph"] == "X"]
        assert {(event["name"], event["tid"]) for event in spans} == {
            (name, tid) for name, tid in CATEGORY_TIDS.items()}

    def test_infection_is_traceable_to_its_query(self):
        # walk parent_id links from the dirty scan back to the root:
        # the exported args must carry the full causal path
        tracer = SpanTracer()
        root = make_chain(tracer, 0.0, clean=False)
        by_id = {event["args"]["span_id"]: event
                 for event in build_trace(tracer)["traceEvents"]
                 if event["ph"] == "X"}
        scan = next(event for event in by_id.values()
                    if event["name"] == "scan")
        path = [scan["name"]]
        cursor = scan
        while cursor["args"]["parent_id"] is not None:
            cursor = by_id[cursor["args"]["parent_id"]]
            path.append(cursor["name"])
        assert path == ["scan", "download", "response", "query"]
        assert cursor["args"]["span_id"] == root

    def test_flow_edges_pair_up_per_parented_span(self):
        tracer = SpanTracer()
        make_chain(tracer, 0.0)  # 4 spans, 3 parent->child edges
        events = build_trace(tracer)["traceEvents"]
        starts = [event for event in events if event["ph"] == "s"]
        finishes = [event for event in events if event["ph"] == "f"]
        assert len(starts) == len(finishes) == 3
        assert ({event["id"] for event in starts}
                == {event["id"] for event in finishes})
        for finish in finishes:
            assert finish["bp"] == "e"

    def test_summary_counts(self):
        tracer = SpanTracer()
        make_chain(tracer, 0.0, clean=False)
        make_chain(tracer, 100.0)
        other = build_trace(tracer)["otherData"]
        assert other["spans_recorded"] == 8
        assert other["chains_total"] == 2
        assert other["chains_infected"] == 1
        assert other["sample_every"] == 1


class TestSampling:
    def test_infected_chains_survive_any_sampling(self):
        tracer = SpanTracer()
        dirty = [make_chain(tracer, i * 100.0, clean=False)
                 for i in range(10)]
        trace = build_trace(tracer, sample_every=1000)
        kept_roots = {event["args"]["span_id"]
                      for event in trace["traceEvents"]
                      if event["ph"] == "X" and event["name"] == "query"}
        assert kept_roots == set(dirty)

    def test_clean_chains_sampled_one_in_n(self):
        tracer = SpanTracer()
        roots = [make_chain(tracer, i * 100.0) for i in range(12)]
        trace = build_trace(tracer, sample_every=4)
        # roots are span ids 1, 5, 9, ...; kept when id % 4 == 1
        expected = {root for root in roots if root % 4 == 1}
        kept = {event["args"]["span_id"]
                for event in trace["traceEvents"]
                if event["ph"] == "X" and event["name"] == "query"}
        assert kept == expected
        assert trace["otherData"]["chains_exported"] == len(expected)

    def test_sample_every_validated(self):
        with pytest.raises(ValueError):
            build_trace(SpanTracer(), sample_every=0)


class TestDeterminism:
    @staticmethod
    def run_once(tmp_path, tag):
        telemetry = CampaignTelemetry()
        config = CampaignConfig(seed=11, duration_days=0.02)
        run_limewire_campaign(config, GnutellaProfile().scaled(0.35),
                              telemetry=telemetry)
        path = tmp_path / f"{tag}.json"
        write_trace(telemetry.tracer, path, sample_every=8)
        return path.read_bytes()

    def test_same_seed_runs_serialize_byte_identically(self, tmp_path):
        first = self.run_once(tmp_path, "a")
        second = self.run_once(tmp_path, "b")
        assert first == second

    def test_output_is_valid_trace_event_json(self, tmp_path):
        payload = json.loads(self.run_once(tmp_path, "c"))
        assert payload["traceEvents"], "campaign produced no spans"
        assert all(event["ph"] in VALID_PHASES
                   for event in payload["traceEvents"])
        # wall-clock never leaks into the serialization
        assert b"wall" not in self.run_once(tmp_path, "d")

    def test_infections_in_real_campaign_link_back_to_queries(self,
                                                              tmp_path):
        telemetry = CampaignTelemetry()
        config = CampaignConfig(seed=11, duration_days=0.02)
        run_limewire_campaign(config, GnutellaProfile().scaled(0.35),
                              telemetry=telemetry)
        roots = chain_roots(telemetry.tracer)
        infected = infected_roots(telemetry.tracer, roots)
        assert infected, "campaign recorded no infections"
        by_id = {span.span_id: span for span in telemetry.tracer.spans()}
        for root in infected:
            assert by_id[root].name == "query"
