"""Tests for the simulator's telemetry hook."""

import pytest

from repro.simnet.kernel import Simulator
from repro.telemetry.kernel import KernelTelemetry
from repro.telemetry.registry import MetricRegistry


@pytest.fixture()
def registry():
    return MetricRegistry()


def run_labelled(telemetry, labels=("query", "query", "scan")):
    sim = Simulator(seed=3, telemetry=telemetry)
    for offset, label in enumerate(labels):
        sim.at(1.0 + offset, lambda: None, label=label)
    sim.run_until(10.0)
    return sim


class TestLabelCounts:
    def test_counts_every_event_per_label(self, registry):
        telemetry = KernelTelemetry(registry)
        run_labelled(telemetry)
        assert telemetry.label_counts == {"query": 2, "scan": 1}
        assert telemetry.events_seen == 3
        events = registry.get("sim_events_total")
        assert events.labels("query").value == 2
        assert events.labels("scan").value == 1

    def test_flush_pushes_deltas_not_totals(self, registry):
        # run_until flushes once per call; a second simulator sharing
        # the telemetry object must not re-add the first run's counts
        telemetry = KernelTelemetry(registry)
        run_labelled(telemetry, labels=("query",))
        run_labelled(telemetry, labels=("query",))
        # label_counts is cumulative across runs of this telemetry object
        assert registry.get("sim_events_total").value == \
            telemetry.events_seen

    def test_flush_is_idempotent(self, registry):
        telemetry = KernelTelemetry(registry)
        sim = run_labelled(telemetry)
        before = registry.get("sim_events_total").value
        telemetry.flush(sim)
        assert registry.get("sim_events_total").value == before


class TestSampling:
    def test_sample_every_one_times_all_callbacks(self, registry):
        telemetry = KernelTelemetry(registry, sample_every=1)
        run_labelled(telemetry)
        histogram = registry.get("sim_callback_wall_seconds")
        assert histogram.count == 3
        assert histogram.labels("query").count == 2

    def test_large_sample_every_times_few(self, registry):
        telemetry = KernelTelemetry(registry, sample_every=1000)
        run_labelled(telemetry)
        assert registry.get("sim_callback_wall_seconds").count == 0

    def test_sampling_phase_survives_run_until(self, registry):
        # 3 events per run, sample_every=2: phase carries across calls,
        # so 4 runs x 3 events = 12 events -> exactly 6 samples
        telemetry = KernelTelemetry(registry, sample_every=2)
        for _ in range(4):
            run_labelled(telemetry)
        assert registry.get("sim_callback_wall_seconds").count == 6

    def test_sample_every_must_be_positive(self, registry):
        with pytest.raises(ValueError):
            KernelTelemetry(registry, sample_every=0)


class TestGauges:
    def test_queue_and_clock_gauges_set_on_flush(self, registry):
        telemetry = KernelTelemetry(registry)
        sim = run_labelled(telemetry)
        assert registry.get("sim_queue_depth").value == 0
        assert registry.get("sim_virtual_time_seconds").value == sim.now
        assert (registry.get("sim_queue_compactions").value
                == sim.queue.compactions)
        assert (registry.get("sim_queue_dead_events").value
                == sim.queue.dead_events)

    def test_per_tier_depth_gauges_split_queue_depth(self, registry):
        from repro.simnet.sched import NEAR_SPAN, TieredEventQueue

        telemetry = KernelTelemetry(registry)
        sim = Simulator(seed=3, telemetry=telemetry)
        assert isinstance(sim.queue, TieredEventQueue)
        for offset in range(3):  # calendar window
            sim.at(1.0 + offset, lambda: None, label="near")
        for offset in range(2):  # wheel levels
            sim.at(NEAR_SPAN * 10 + offset * 100.0, lambda: None,
                   label="far")
        sim.run_until(0.5)
        near = registry.get("sim_queue_near_depth").value
        wheel = registry.get("sim_queue_wheel_depth").value
        assert near == 3
        assert wheel == 2
        assert near + wheel == registry.get("sim_queue_depth").value

    def test_cancelled_total_gauge_counts_cancels(self, registry):
        telemetry = KernelTelemetry(registry)
        sim = Simulator(seed=3, telemetry=telemetry)
        keep = sim.at(1.0, lambda: None, label="keep")
        for offset in range(4):
            sim.cancel(sim.at(2.0 + offset, lambda: None, label="drop"))
        sim.cancel(keep)
        sim.cancel(keep)  # idempotent: counted once
        sim.run_until(10.0)
        assert registry.get("sim_queue_cancelled_total").value == 5
        assert (registry.get("sim_queue_cancelled_total").value
                == sim.queue.cancelled_total)

    def test_heap_twin_tier_split_is_all_near(self, registry):
        # the heap has no wheel: every live event is near, so the
        # near + wheel == depth invariant holds on this twin too
        from repro.simnet import fastpath
        from repro.simnet.events import EventQueue

        telemetry = KernelTelemetry(registry)
        fastpath.set_slow_path(True)
        try:
            sim = Simulator(seed=3, telemetry=telemetry)
        finally:
            fastpath.set_slow_path(False)
        assert isinstance(sim.queue, EventQueue)
        sim.at(1.0, lambda: None, label="near")
        sim.at(100_000.0, lambda: None, label="far")
        sim.run_until(0.5)
        assert registry.get("sim_queue_depth").value == 2
        assert registry.get("sim_queue_near_depth").value == 2
        assert registry.get("sim_queue_wheel_depth").value == 0

    def test_sample_interval_gauge_registered(self, registry):
        KernelTelemetry(registry, sample_every=32)
        assert (registry.get("sim_callback_sample_interval").value
                == 32)


class TestDeterminism:
    def test_telemetry_does_not_change_simulation(self):
        def run(telemetry):
            sim = Simulator(seed=11, telemetry=telemetry)
            trace = []
            stream = sim.stream("jitter")

            def tick(i):
                trace.append((round(sim.now, 9), i, stream.random()))

            for i in range(50):
                sim.at(1.0 + (i % 7) * 0.5, lambda i=i: tick(i))
            sim.run_all()
            return trace

        plain = run(None)
        instrumented = run(KernelTelemetry(MetricRegistry()))
        assert plain == instrumented
