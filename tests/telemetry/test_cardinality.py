"""Label-cardinality guard: the registry bounds label explosions loudly."""

import warnings

import pytest

from repro.telemetry.registry import OVERFLOW_LABEL, MetricRegistry


def _overflowing_counter(cap=3, extra=4):
    registry = MetricRegistry(max_label_cardinality=cap)
    counter = registry.counter("deliveries_total", "per-link deliveries",
                               labels=("link",))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for i in range(cap + extra):
            counter.labels(f"link-{i}").inc()
    return registry, counter, caught


class TestCardinalityGuard:
    def test_new_combinations_fold_into_overflow(self):
        _registry, counter, _caught = _overflowing_counter(cap=3, extra=4)
        keys = {key for key, _child in counter.samples()}
        assert (OVERFLOW_LABEL,) in keys
        assert len(keys) == 4  # 3 real children + the overflow bucket

    def test_totals_are_preserved(self):
        _registry, counter, _caught = _overflowing_counter(cap=3, extra=4)
        total = sum(child.value for _key, child in counter.samples())
        assert total == 7

    def test_warns_once_per_instrument(self):
        _registry, _counter, caught = _overflowing_counter(cap=2, extra=5)
        overflow_warnings = [w for w in caught
                             if issubclass(w.category, RuntimeWarning)]
        assert len(overflow_warnings) == 1
        assert "cardinality cap" in str(overflow_warnings[0].message)

    def test_existing_keys_keep_their_own_child(self):
        registry = MetricRegistry(max_label_cardinality=2)
        counter = registry.counter("hits_total", "Hits.", labels=("who",))
        counter.labels("a").inc()
        counter.labels("b").inc()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            counter.labels("c").inc()  # past the cap -> overflow
            counter.labels("a").inc()  # pre-existing -> still its own
        by_key = dict(counter.samples())
        assert by_key[("a",)].value == 2
        assert by_key[(OVERFLOW_LABEL,)].value == 1

    def test_unbounded_when_cap_is_none(self):
        registry = MetricRegistry(max_label_cardinality=None)
        counter = registry.counter("free_total", "Free.", labels=("who",))
        for i in range(50):
            counter.labels(f"who-{i}").inc()
        assert len(dict(counter.samples())) == 50

    def test_cap_validated(self):
        with pytest.raises(ValueError):
            MetricRegistry(max_label_cardinality=0)

    def test_default_cap_is_bounded(self):
        assert MetricRegistry().max_label_cardinality == 1000
