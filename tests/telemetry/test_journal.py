"""Tests for the JSONL run journal."""

import json

import pytest

from repro.simnet.kernel import Simulator
from repro.telemetry.journal import RunJournal
from repro.telemetry.kernel import KernelTelemetry
from repro.telemetry.registry import MetricRegistry


def read_rows(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestCadence:
    def test_one_line_per_interval(self, tmp_path):
        sim = Simulator(seed=1)
        journal = RunJournal(tmp_path / "run.jsonl", interval_s=10.0)
        journal.install(sim, until=100.0)
        sim.at(95.0, lambda: None)
        sim.run_all()
        journal.close(sim)
        rows = read_rows(journal.path)
        # snapshots at t=10..100 inclusive, plus the final row
        assert [row["virtual_time"] for row in rows[:-1]] == [
            pytest.approx(10.0 * n) for n in range(1, 11)]
        assert rows[-1]["final"] is True
        assert journal.snapshots_written == len(rows)

    def test_until_bounds_the_schedule(self, tmp_path):
        sim = Simulator(seed=1)
        journal = RunJournal(tmp_path / "run.jsonl", interval_s=10.0)
        journal.install(sim, until=30.0)
        sim.at(500.0, lambda: None)
        sim.run_until(500.0)
        journal.close(sim)
        rows = read_rows(journal.path)
        assert rows[-2]["virtual_time"] == pytest.approx(30.0)
        assert rows[-1]["virtual_time"] == pytest.approx(500.0)

    def test_interval_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            RunJournal(tmp_path / "run.jsonl", interval_s=0.0)


class TestAutoInterval:
    def test_default_derives_from_horizon(self, tmp_path):
        # horizon/100: a 1000s run journals every 10s (~100 lines)
        journal = RunJournal(tmp_path / "run.jsonl")
        assert journal.interval_s is None
        assert journal.resolve_interval(1000.0) == pytest.approx(10.0)

    def test_clamped_to_one_second_floor(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        assert journal.resolve_interval(5.0) == pytest.approx(1.0)

    def test_clamped_to_hourly_ceiling(self, tmp_path):
        # a 35-virtual-day run must not journal more often than hourly
        journal = RunJournal(tmp_path / "run.jsonl")
        assert journal.resolve_interval(35 * 86400.0) == pytest.approx(
            3600.0)

    def test_no_horizon_falls_back_to_hourly(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        assert journal.resolve_interval(None) == pytest.approx(3600.0)
        assert journal.resolve_interval(-1.0) == pytest.approx(3600.0)

    def test_explicit_interval_wins(self, tmp_path):
        # the old fixed-hourly behaviour stays available by opting in
        journal = RunJournal(tmp_path / "run.jsonl", interval_s=3600.0)
        assert journal.resolve_interval(1000.0) == pytest.approx(3600.0)

    def test_install_resolves_and_pins_the_cadence(self, tmp_path):
        sim = Simulator(seed=1)
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.install(sim, until=1000.0)
        assert journal.interval_s == pytest.approx(10.0)
        sim.run_all()
        journal.close(sim)
        rows = read_rows(journal.path)
        assert rows[0]["virtual_time"] == pytest.approx(10.0)
        assert len(rows) == 101  # 100 ticks + the final row

    def test_install_horizon_is_relative_to_now(self, tmp_path):
        sim = Simulator(seed=1)
        sim.at(500.0, lambda: None)
        sim.run_until(500.0)
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.install(sim, until=1500.0)  # horizon: 1000s from now
        assert journal.interval_s == pytest.approx(10.0)


class TestRowContents:
    def test_core_fields(self, tmp_path):
        sim = Simulator(seed=1)
        journal = RunJournal(tmp_path / "run.jsonl", interval_s=10.0)
        journal.install(sim, until=10.0)
        for offset in range(5):
            sim.at(1.0 + offset, lambda: None)
        sim.run_until(10.0)
        journal.close(sim)
        rows = read_rows(journal.path)
        first = rows[0]
        assert first["virtual_time"] == pytest.approx(10.0)
        assert first["queue_depth"] == 0
        # without kernel telemetry, sim.events_processed only
        # accumulates when run_until returns, so the mid-run row lags
        assert first["events_processed"] == 0
        assert first["wall_time_s"] >= 0.0
        assert first["events_per_sec"] >= 0.0
        # the final row, written after run_until returned, is accurate:
        # 5 user events + the journal tick itself
        assert rows[-1]["events_processed"] == 6

    def test_prefers_live_kernel_telemetry_counts(self, tmp_path):
        # mid-run, sim.events_processed lags; the telemetry dict does not
        registry = MetricRegistry()
        sim = Simulator(seed=1, telemetry=KernelTelemetry(registry))
        journal = RunJournal(tmp_path / "run.jsonl", interval_s=10.0)
        journal.install(sim, until=10.0)
        for offset in range(5):
            sim.at(1.0 + offset, lambda: None)
        sim.run_until(10.0)
        first = read_rows(journal.path)[0]
        # 5 user events plus the journal event itself, all seen live
        assert first["events_processed"] == 6

    def test_probes_and_probe_errors(self, tmp_path):
        sim = Simulator(seed=1)
        journal = RunJournal(
            tmp_path / "run.jsonl", interval_s=10.0,
            probes={"responses": lambda: 42,
                    "broken": lambda: 1 / 0})
        journal.install(sim, until=10.0)
        sim.run_all()
        journal.close(sim)
        rows = read_rows(journal.path)
        assert all(row["responses"] == 42 for row in rows)
        assert all(row["broken"] is None for row in rows)
        assert journal.probe_errors == len(rows)

    def test_registry_counter_tracks_snapshots(self, tmp_path):
        registry = MetricRegistry()
        sim = Simulator(seed=1)
        journal = RunJournal(tmp_path / "run.jsonl", interval_s=10.0,
                             registry=registry)
        journal.install(sim, until=30.0)
        sim.run_all()
        journal.close(sim)
        assert (registry.get("journal_snapshots_total").value
                == journal.snapshots_written)


class TestTailability:
    def test_lines_visible_before_close(self, tmp_path):
        # flush-per-write is what makes `tail -f` show live progress
        sim = Simulator(seed=1)
        journal = RunJournal(tmp_path / "run.jsonl", interval_s=10.0)
        journal.install(sim, until=50.0)
        seen = []
        sim.at(45.0, lambda: seen.append(
            len(journal.path.read_text().splitlines())))
        sim.run_all()
        assert seen == [4]  # t=10..40 already on disk at t=45
        journal.close(sim)

    def test_close_without_sim_writes_no_final_row(self, tmp_path):
        sim = Simulator(seed=1)
        journal = RunJournal(tmp_path / "run.jsonl", interval_s=10.0)
        journal.install(sim, until=10.0)
        sim.run_all()
        journal.close()
        rows = read_rows(journal.path)
        assert len(rows) == 1 and "final" not in rows[0]
