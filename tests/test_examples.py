"""Smoke tests: every example script runs end to end.

Each example is executed in-process (``runpy``) with scaled-down
arguments so the whole set finishes in under a minute; assertions check
the narrative output carries the numbers the example exists to show.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, script: str, *argv: str) -> str:
    monkeypatch.setattr(sys, "argv", [script, *argv])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize("script", [
    "quickstart.py", "full_study.py", "size_filter_deployment.py",
    "protocol_tour.py", "longitudinal.py", "investigate_host.py",
])
def test_example_exists(script):
    assert (EXAMPLES / script).exists()


def test_quickstart(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "quickstart.py", "2")
    assert "malware prevalence" in output
    assert "W32." in output


def test_protocol_tour(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "protocol_tour.py")
    assert "GNUTELLA CONNECT/0.6" in output
    assert "QueryHit" in output
    assert "OpenFT" in output
    assert "SearchRequest packet" in output


def test_longitudinal(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "longitudinal.py",
                         "--days", "0.5")
    assert "distinct samples" in output
    assert "new mal hosts" in output


def test_full_study(monkeypatch, capsys, tmp_path):
    output = run_example(monkeypatch, capsys, "full_study.py",
                         "--days", "0.25", "--out", str(tmp_path))
    assert "T2: malware prevalence" in output
    assert "T5: filtering effectiveness" in output
    assert (tmp_path / "limewire.jsonl").exists()
    assert (tmp_path / "openft.jsonl").exists()


def test_investigate_host(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "investigate_host.py")
    assert "top strain" in output
    assert "browsing" in output


def test_size_filter_deployment(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys,
                         "size_filter_deployment.py")
    assert "learned dictionary" in output
    assert "detection" in output
