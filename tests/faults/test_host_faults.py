"""Tests for host-level fault clauses and the chaotic-IO injector."""

import pytest

from repro.faults import (DiskFull, FaultPlan, HostIOFaults, SlowFsync,
                          TornWrite, WorkerHang, WorkerStall)

PAYLOAD = b'{"crc":"00000000","record":{"seed":1}}\n'


class TestHostClauses:
    def test_worker_hang_attempts(self):
        hang = WorkerHang(seeds=(3, 5), attempts=2)
        assert hang.should_hang(3, 0) and hang.should_hang(3, 1)
        assert not hang.should_hang(3, 2)
        assert not hang.should_hang(4, 0)

    def test_worker_stall_validation(self):
        with pytest.raises(ValueError):
            WorkerStall(seeds=(1,), stall_s=0.0)
        with pytest.raises(ValueError):
            WorkerHang(seeds=(1,), attempts=0)

    def test_io_clause_probability_validated(self):
        with pytest.raises(ValueError):
            TornWrite(probability=1.5)
        with pytest.raises(ValueError):
            SlowFsync(delay_s=-1.0)

    def test_plan_accepts_and_reports_host_clauses(self):
        plan = FaultPlan(worker_hang=WorkerHang(seeds=(2,)),
                         worker_stall=WorkerStall(seeds=(3,)),
                         io_clauses=(TornWrite(at_ops=(0,)),))
        assert bool(plan)
        described = plan.describe()
        assert "WorkerHang" in described and "TornWrite" in described

    def test_plan_rejects_foreign_io_clause(self):
        with pytest.raises(TypeError, match="IO fault"):
            FaultPlan(io_clauses=(WorkerHang(seeds=(1,)),))

    def test_scientific_key_excludes_host_clauses(self):
        """The checkpoint-compatibility contract: host chaos never
        changes measured results, so it must not change the key."""
        bare = FaultPlan()
        chaotic = FaultPlan(worker_hang=WorkerHang(seeds=(1,)),
                            worker_stall=WorkerStall(seeds=(2,)),
                            io_clauses=(DiskFull(probability=0.5),))
        assert bare.scientific_key() == chaotic.scientific_key()


class TestHostIOFaults:
    def test_no_clauses_passes_through(self):
        io = HostIOFaults(FaultPlan(), seed=1)
        data, error = io.apply_write("p", PAYLOAD)
        assert data == PAYLOAD and error is None

    def test_at_ops_tears_exact_ordinal(self):
        plan = FaultPlan(io_clauses=(TornWrite(at_ops=(1,)),))
        io = HostIOFaults(plan, seed=7)
        first, _ = io.apply_write("p", PAYLOAD)
        second, _ = io.apply_write("p", PAYLOAD)
        third, _ = io.apply_write("p", PAYLOAD)
        assert first == PAYLOAD and third == PAYLOAD
        assert len(second) < len(PAYLOAD)
        assert PAYLOAD.startswith(second)  # a prefix, never scrambled
        assert io.injected == {"torn-write": 1}

    def test_disk_full_returns_partial_bytes_and_error(self):
        plan = FaultPlan(io_clauses=(DiskFull(at_ops=(0,)),))
        io = HostIOFaults(plan, seed=7)
        data, error = io.apply_write("p", PAYLOAD)
        assert len(data) < len(PAYLOAD)
        assert isinstance(error, OSError) and error.errno == 28

    def test_same_seed_same_carnage(self):
        plan = FaultPlan(io_clauses=(TornWrite(probability=0.4),))

        def run(seed):
            io = HostIOFaults(plan, seed=seed)
            return [io.apply_write("p", PAYLOAD)[0] for _ in range(50)]

        assert run(11) == run(11)
        assert run(11) != run(12)  # and the seed actually matters

    def test_at_ops_does_not_shift_probabilistic_draws(self):
        """Adding an explicit ordinal must not reshuffle later seeded
        tears -- the stream advances identically either way."""
        base = FaultPlan(io_clauses=(TornWrite(probability=0.4),))
        pinned = FaultPlan(io_clauses=(TornWrite(probability=0.4,
                                                 at_ops=(0,)),))

        def torn_ops(plan):
            io = HostIOFaults(plan, seed=3)
            return [len(io.apply_write("p", PAYLOAD)[0]) < len(PAYLOAD)
                    for _ in range(40)]

        assert torn_ops(base)[1:] == torn_ops(pinned)[1:]

    def test_slow_fsync_counts(self):
        plan = FaultPlan(io_clauses=(SlowFsync(probability=1.0,
                                               delay_s=0.0),))
        io = HostIOFaults(plan, seed=1)
        io.on_fsync("p")
        assert io.injected == {"slow-fsync": 1}
