"""Cross-shard fault clauses: a Partition straddling a shard boundary.

The partition census and split are *replicated* draws -- every shard
samples the same sorted endpoint census from the same ``faults:
partition`` stream -- so a clause whose isolated set straddles the shard
boundary must drop exactly the envelopes the single-process twin drops,
no matter which shard an envelope's delivery lands on.  This test builds
a scripted two-shard scenario (constant latency so delivery times carry
no stream dependence, zero loss so the envelope sets are exact) and
compares envelope-by-envelope against the plain twin.
"""

from repro.faults import FaultInjector, FaultPlan, Partition
from repro.simnet.kernel import Simulator
from repro.simnet.shard import (ShardPlan, ShardedTransport, WindowDriver,
                                window_run_target)
from repro.simnet.transport import LatencyModel, Transport

SEED = 1  # chosen so the sampled isolated pair straddles the boundary
ENDPOINTS = ("u0", "l0", "u1", "l1")
PLAN = ShardPlan.from_groups(2, [["u0", "l0"], ["u1", "l1"]])
#: constant propagation delay: uniform(a, a) == a whatever the stream
CONST_LATENCY = LatencyModel(base_min_s=0.05, base_max_s=0.05)
CLAUSE = Partition(start_s=10.0, end_s=40.0, fraction=0.5)
#: send rounds before, inside (twice), and after the partition window
SEND_TIMES = (5.0, 15.0, 25.0, 45.0)
FINAL = 60.0


def attach_all(sim, transport):
    """Attach every endpoint; deliveries record (now, src, dst, payload)."""
    inboxes = {}
    for endpoint_id in ENDPOINTS:
        inbox = inboxes.setdefault(endpoint_id, [])
        transport.attach(
            endpoint_id,
            lambda env, inbox=inbox, sim=sim: inbox.append(
                (sim.now, env.src, env.dst, env.payload)))
    return inboxes


def schedule_sends(sim, transport):
    """Every ordered pair sends in every round (replicated everywhere)."""
    for at in SEND_TIMES:
        for src in ENDPOINTS:
            for dst in ENDPOINTS:
                if src == dst:
                    continue
                payload = f"{src}->{dst}@{at:g}".encode("ascii")
                sim.at(at,
                       lambda src=src, dst=dst, payload=payload:
                       transport.send(src, dst, payload),
                       label="send")


def arm_partition(sim, transport):
    injector = FaultInjector(sim, transport, FaultPlan(clauses=(CLAUSE,)),
                             protect=())
    injector.install()
    return injector


class _Handle:
    """Minimal WindowDriver shard handle over one (sim, transport)."""

    def __init__(self, sim, transport):
        self.sim = sim
        self.transport = transport

    def peek(self):
        return self.sim.queue.peek_time()

    def advance(self, target, inclusive, batch):
        self.transport.ingest(batch)
        self.sim.run_until(target if inclusive
                           else window_run_target(target))
        return self.transport.take_outbox(), self.peek()


def run_sharded():
    handles, injectors, inboxes = [], [], []
    for shard_id in range(2):
        sim = Simulator(seed=SEED)
        transport = ShardedTransport(sim, latency=CONST_LATENCY)
        inboxes.append(attach_all(sim, transport))
        injectors.append(arm_partition(sim, transport))
        schedule_sends(sim, transport)
        transport.bind(PLAN, shard_id)
        handles.append(_Handle(sim, transport))
    driver = WindowDriver(handles, PLAN, CONST_LATENCY.base_min_s)
    driver.run_segment(FINAL)
    # an endpoint's deliveries land on its owner shard; merge by owner
    merged = {endpoint_id: inboxes[PLAN.owner_of(endpoint_id)][endpoint_id]
              for endpoint_id in ENDPOINTS}
    return merged, injectors, driver


def run_twin():
    sim = Simulator(seed=SEED)
    transport = Transport(sim, latency=CONST_LATENCY)
    inboxes = attach_all(sim, transport)
    injector = arm_partition(sim, transport)
    schedule_sends(sim, transport)
    sim.run_until(FINAL)
    return inboxes, injector


def isolated_set():
    """The clause's isolated endpoints, replayed from a fresh stream."""
    sim = Simulator(seed=SEED)
    return set(sim.stream("faults:partition").sample(sorted(ENDPOINTS), 2))


class TestCrossShardPartition:
    def test_clause_straddles_the_shard_boundary(self):
        # the scenario only proves something if the isolated set spans
        # both shards -- guaranteed by the chosen seed, asserted here
        shards = {PLAN.owner_of(endpoint_id)
                  for endpoint_id in isolated_set()}
        assert shards == {0, 1}

    def test_drops_exactly_the_twin_envelopes(self):
        sharded, injectors, driver = run_sharded()
        twin, twin_injector = run_twin()
        assert driver.windows > 0  # the window loop actually engaged
        for endpoint_id in ENDPOINTS:
            assert sorted(sharded[endpoint_id]) == sorted(twin[endpoint_id])
        # something was delivered and something was partition-dropped
        assert sum(len(box) for box in twin.values()) > 0
        twin_drops = twin_injector.injected.get("partition-drop", 0)
        assert twin_drops > 0
        shard_drops = sum(
            injector.injected.get("partition-drop", 0)
            for injector in injectors)
        assert shard_drops == twin_drops

    def test_partition_window_respects_boundaries(self):
        sharded, _injectors, _driver = run_sharded()
        isolated = isolated_set()
        crossing_deliveries = [
            at
            for box in sharded.values()
            for at, src, dst, _payload in box
            if (src in isolated) != (dst in isolated)]
        # envelopes crossing the partition survive only when delivered
        # outside the clause window (interception happens at delivery)
        assert crossing_deliveries  # the pre/post rounds got through
        for at in crossing_deliveries:
            assert at < CLAUSE.start_s or at > CLAUSE.end_s
