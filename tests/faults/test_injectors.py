"""Tests for the runtime fault injectors (transport and fetch path)."""

import pytest

from repro.faults import (FaultInjector, FaultPlan, FetchFaults,
                          FetchIntervention, LatencyStorm, LossBurst,
                          Partition, PeerCrash, SlowServe, Tamper)
from repro.files.payload import Blob
from repro.simnet.kernel import Simulator
from repro.simnet.trace import TransportTrace
from repro.simnet.transport import Transport


def make_transport(sim, ids=("a", "b", "c", "d")):
    transport = Transport(sim)
    inboxes = {}
    for endpoint_id in ids:
        inbox = inboxes.setdefault(endpoint_id, [])
        transport.attach(endpoint_id,
                         lambda env, inbox=inbox: inbox.append(env))
    return transport, inboxes


def install(sim, transport, *clauses, protect=("crawler",)):
    injector = FaultInjector(sim, transport, FaultPlan(clauses=clauses),
                             protect=protect)
    injector.install()
    return injector


class TestLossBurst:
    def test_drops_everything_inside_window(self, sim):
        transport, inboxes = make_transport(sim)
        injector = install(sim, transport, LossBurst(0.0, 100.0, 1.0))
        for _ in range(5):
            transport.send("a", "b", b"x")
        sim.run_until(50.0)
        assert inboxes["b"] == []
        assert injector.injected["loss"] == 5
        assert transport.drop_causes["fault-injected"] == 5

    def test_window_end_stops_the_burst(self, sim):
        transport, inboxes = make_transport(sim)
        install(sim, transport, LossBurst(0.0, 100.0, 1.0))
        sim.run_until(200.0)  # burst over
        transport.send("a", "b", b"x")
        sim.run_until(300.0)
        assert len(inboxes["b"]) == 1

    def test_not_yet_open_window_is_inert(self, sim):
        transport, inboxes = make_transport(sim)
        injector = install(sim, transport, LossBurst(50.0, 100.0, 1.0))
        transport.send("a", "b", b"x")
        sim.run_until(10.0)  # delivered before the window opens
        assert len(inboxes["b"]) == 1
        assert injector.injected == {}


class TestLatencyStorm:
    def test_surcharge_delays_delivery(self, sim):
        transport, _ = make_transport(sim)
        received_at = []
        transport.attach("sink", lambda env: received_at.append(sim.now))
        injector = install(sim, transport,
                           LatencyStorm(0.0, 1000.0, 5.0, 5.0))
        sim.run_until(1.0)  # let the window activate
        transport.send("a", "sink", b"x")
        sim.run_until(100.0)
        assert received_at and received_at[0] > 5.0
        assert injector.injected["latency"] == 1

    def test_model_attributes_pass_through(self, sim):
        transport, _ = make_transport(sim)
        original_max = transport.latency.base_max_s
        install(sim, transport, LatencyStorm(0.0, 10.0, 1.0, 2.0))
        assert transport.latency.base_max_s == original_max


class TestPartition:
    def test_cross_side_traffic_dropped_until_heal(self, sim):
        transport, inboxes = make_transport(sim)
        injector = install(sim, transport, Partition(10.0, 100.0, 0.5))
        sim.run_until(20.0)  # partition active
        sides = injector._partition_sides[0]
        isolated = sorted(endpoint_id for endpoint_id in transport._endpoints
                          if sides.get(endpoint_id))
        connected = sorted(endpoint_id for endpoint_id in transport._endpoints
                           if not sides.get(endpoint_id))
        assert len(isolated) == 2 and len(connected) == 2

        transport.send(isolated[0], connected[0], b"cross")
        transport.send(isolated[0], isolated[1], b"same-side")
        sim.run_until(50.0)
        assert inboxes[connected[0]] == []
        assert len(inboxes[isolated[1]]) == 1
        assert injector.injected["partition-drop"] == 1

        sim.run_until(150.0)  # healed
        transport.send(isolated[0], connected[0], b"after")
        sim.run_until(200.0)
        assert len(inboxes[connected[0]]) == 1


class TestPeerCrash:
    def test_crash_is_permanent(self, sim):
        transport, _ = make_transport(sim)
        install(sim, transport, PeerCrash(10.0, 1.0))
        sim.run_until(20.0)
        assert not transport.is_online("a")
        transport.set_online("a", True)  # churn tries to revive
        assert not transport.is_online("a")
        transport.set_online("a", False)  # going down still allowed
        assert not transport.is_online("a")

    def test_protected_endpoints_survive(self, sim):
        transport, _ = make_transport(sim, ids=("a", "b", "crawler"))
        injector = install(sim, transport, PeerCrash(10.0, 1.0))
        sim.run_until(20.0)
        assert transport.is_online("crawler")
        assert injector.injected["crash"] == 2

    def test_blackhole_swallows_both_directions(self, sim):
        transport, inboxes = make_transport(sim, ids=("a", "b"))
        injector = install(sim, transport,
                           PeerCrash(10.0, 1.0, blackhole=True))
        sim.run_until(20.0)
        # nominally online -- the half-dead NAT box
        assert transport.is_online("a") and transport.is_online("b")
        transport.send("a", "b", b"in")
        transport.send("b", "a", b"out")
        sim.run_until(50.0)
        assert inboxes["a"] == [] and inboxes["b"] == []
        assert injector.injected["blackhole-drop"] == 2
        assert injector.injected["blackhole"] == 2


class TestLifecycle:
    def test_uninstall_restores_transport(self, sim):
        transport, inboxes = make_transport(sim)
        original_deliver = transport._deliver
        original_set_online = transport.set_online
        original_latency = transport.latency
        injector = install(sim, transport, LossBurst(0.0, 1000.0, 1.0),
                           PeerCrash(5.0, 1.0))
        sim.run_until(10.0)
        injector.uninstall()
        assert transport._deliver == original_deliver
        assert transport.set_online == original_set_online
        assert transport.latency is original_latency
        transport.set_online("a", True)  # crash pin released
        transport.set_online("b", True)
        transport.send("a", "b", b"x")
        sim.run_until(50.0)  # burst window still "open" but tap is gone
        assert len(inboxes["b"]) == 1

    def test_stacks_with_transport_trace(self, sim):
        transport, inboxes = make_transport(sim)
        trace = TransportTrace(transport, classify=lambda payload: "msg")
        trace.install()
        injector = install(sim, transport, LossBurst(0.0, 1000.0, 1.0))
        transport.send("a", "b", b"x")
        sim.run_until(10.0)
        assert inboxes["b"] == []  # injector sits above the trace
        injector.uninstall()
        transport.send("a", "b", b"y")
        sim.run_until(20.0)
        assert len(inboxes["b"]) == 1
        assert trace.captured == 1  # trace saw only the delivered one
        trace.uninstall()

    def test_install_is_idempotent(self, sim):
        transport, _ = make_transport(sim)
        injector = install(sim, transport, LossBurst(0.0, 10.0, 1.0))
        tapped = transport._deliver
        injector.install()
        assert transport._deliver is tapped


class TestDeterminism:
    def run_once(self, seed):
        sim = Simulator(seed=seed)
        transport, _ = make_transport(sim)
        injector = install(
            sim, transport,
            LossBurst(0.0, 50.0, 0.5),
            LatencyStorm(10.0, 60.0, 0.5, 2.0),
            Partition(20.0, 80.0, 0.5),
            PeerCrash(70.0, 0.5))
        for step in range(40):
            sim.at(float(step), lambda: transport.send("a", "b", b"x"))
            sim.at(float(step) + 0.5, lambda: transport.send("c", "d", b"y"))
        sim.run_until(100.0)
        return dict(injector.injected), dict(transport.drop_causes)

    def test_same_seed_same_fault_timeline(self):
        assert self.run_once(7) == self.run_once(7)

    def test_streams_are_named_not_shared(self, sim):
        # arming the injector must not perturb an unrelated stream:
        # draws come from faults:* children, not the parent sequence
        baseline = Simulator(seed=sim.seed).stream("other").random()
        transport, _ = make_transport(sim)
        install(sim, transport, LossBurst(0.0, 10.0, 0.9))
        assert sim.stream("other").random() == baseline


class TestFetchFaults:
    def make(self, sim, *clauses):
        return FetchFaults(sim, FaultPlan(clauses=clauses))

    def test_no_clauses_hands_off(self, sim):
        faults = self.make(sim)
        assert faults.on_fetch(record=None, attempt=0) is None

    def test_out_of_window_hands_off(self, sim):
        faults = self.make(sim, SlowServe(50.0, 100.0, 1.0, 1.0, 2.0))
        assert faults.on_fetch(record=None, attempt=0) is None

    def test_slow_serve_stalls(self, sim):
        faults = self.make(sim, SlowServe(0.0, 100.0, 1.0, 5.0, 5.0))
        intervention = faults.on_fetch(record=None, attempt=0)
        assert intervention.stall_s == pytest.approx(5.0)
        assert intervention.tamper is None
        assert faults.injected["stall"] == 1

    def test_tamper_truncates(self, sim):
        faults = self.make(sim, Tamper(0.0, 100.0, 1.0, 0.0))
        intervention = faults.on_fetch(record=None, attempt=0)
        assert intervention.tamper == "truncate"
        assert faults.injected["truncate"] == 1

    def test_tamper_corrupts(self, sim):
        faults = self.make(sim, Tamper(0.0, 100.0, 0.0, 1.0))
        intervention = faults.on_fetch(record=None, attempt=0)
        assert intervention.tamper == "corrupt"
        assert faults.injected["corrupt"] == 1


class TestFetchIntervention:
    def test_truncate_changes_identity_and_size(self):
        blob = Blob(content_key="strain", extension="exe", size=900_000,
                    markers=(b"sig",))
        truncated = FetchIntervention(tamper="truncate").tamper_blob(blob)
        assert truncated.sha1_urn() != blob.sha1_urn()
        assert truncated.size < blob.size
        assert truncated.markers == ()

    def test_corrupt_keeps_shape_changes_identity(self):
        blob = Blob(content_key="strain", extension="exe", size=900_000,
                    markers=(b"sig",))
        corrupt = FetchIntervention(tamper="corrupt").tamper_blob(blob)
        assert corrupt.sha1_urn() != blob.sha1_urn()
        assert corrupt.size == blob.size
        assert corrupt.markers == blob.markers

    def test_no_tamper_returns_blob_unchanged(self):
        blob = Blob(content_key="x", extension="mp3", size=100)
        assert FetchIntervention().tamper_blob(blob) is blob
