"""Tests for the declarative fault-plan layer."""

import pickle

import pytest

from repro.faults import (SEVERITIES, FaultPlan, LatencyStorm, LossBurst,
                          Partition, PeerCrash, SlowServe, Tamper,
                          WorkerCrash)


class TestClauseValidation:
    def test_window_must_be_ordered(self):
        with pytest.raises(ValueError):
            LossBurst(10.0, 10.0, 0.1)
        with pytest.raises(ValueError):
            LossBurst(-1.0, 10.0, 0.1)

    def test_loss_rate_bounded(self):
        with pytest.raises(ValueError):
            LossBurst(0.0, 10.0, 1.5)

    def test_latency_surcharge_ordered(self):
        with pytest.raises(ValueError):
            LatencyStorm(0.0, 10.0, 2.0, 1.0)

    def test_partition_fraction_bounded(self):
        with pytest.raises(ValueError):
            Partition(0.0, 10.0, fraction=1.2)

    def test_crash_instant_nonnegative(self):
        with pytest.raises(ValueError):
            PeerCrash(-5.0, 0.1)

    def test_slow_serve_stall_bounds(self):
        with pytest.raises(ValueError):
            SlowServe(0.0, 10.0, 0.5, 0.0, 5.0)  # zero min stall
        with pytest.raises(ValueError):
            SlowServe(0.0, 10.0, 0.5, 9.0, 5.0)  # min > max

    def test_tamper_probabilities_sum(self):
        with pytest.raises(ValueError):
            Tamper(0.0, 10.0, truncate_probability=0.6,
                   corrupt_probability=0.6)

    def test_worker_crash_attempts_positive(self):
        with pytest.raises(ValueError):
            WorkerCrash(seeds=(1,), attempts=0)


class TestWorkerCrash:
    def test_default_crashes_first_attempt_only(self):
        crash = WorkerCrash(seeds=(2, 5))
        assert crash.should_crash(2, 0)
        assert not crash.should_crash(2, 1)  # the retry heals
        assert not crash.should_crash(3, 0)  # unlisted seed untouched

    def test_two_attempts_kill_the_retry_too(self):
        crash = WorkerCrash(seeds=(2,), attempts=2)
        assert crash.should_crash(2, 0)
        assert crash.should_crash(2, 1)
        assert not crash.should_crash(2, 2)


class TestFaultPlan:
    def test_unknown_clause_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan(clauses=("not a clause",))

    def test_truthiness(self):
        assert not FaultPlan()
        assert FaultPlan(clauses=(LossBurst(0.0, 1.0, 0.1),))
        assert FaultPlan(worker_crash=WorkerCrash(seeds=(1,)))

    def test_clause_split_by_surface(self):
        burst = LossBurst(0.0, 1.0, 0.1)
        stall = SlowServe(0.0, 1.0, 0.5, 1.0, 2.0)
        plan = FaultPlan(clauses=(burst, stall))
        assert plan.transport_clauses == (burst,)
        assert plan.fetch_clauses == (stall,)

    def test_scientific_key_excludes_worker_crash(self):
        burst = LossBurst(0.0, 1.0, 0.1)
        with_crash = FaultPlan(clauses=(burst,),
                               worker_crash=WorkerCrash(seeds=(1,)))
        without = FaultPlan(clauses=(burst,))
        assert with_crash.scientific_key() == without.scientific_key()

    def test_picklable(self):
        plan = FaultPlan.envelope("severe", 1000.0)
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_describe_lists_clauses(self):
        assert FaultPlan().describe() == "(empty plan)"
        text = FaultPlan.envelope("mild", 1000.0).describe()
        assert "LossBurst" in text
        assert "Tamper" in text


class TestEnvelope:
    def test_off_is_empty(self):
        assert not FaultPlan.envelope("off", 1000.0)

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.envelope("apocalyptic", 1000.0)

    def test_horizon_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultPlan.envelope("mild", 0.0)

    def test_all_graded_severities_build(self):
        for severity in SEVERITIES[1:]:
            plan = FaultPlan.envelope(severity, 86_400.0)
            assert plan.clauses
            assert plan.worker_crash is None

    def test_windows_fit_horizon(self):
        horizon = 3600.0
        plan = FaultPlan.envelope("extreme", horizon)
        for clause in plan.clauses:
            end = getattr(clause, "end_s", getattr(clause, "at_s", 0.0))
            assert end <= horizon

    def test_severity_escalates_loss(self):
        def first_loss(severity):
            plan = FaultPlan.envelope(severity, 1000.0)
            return next(clause.loss_rate for clause in plan.clauses
                        if isinstance(clause, LossBurst))
        rates = [first_loss(s) for s in ("mild", "moderate", "severe",
                                         "extreme")]
        assert rates == sorted(rates)
        assert rates[0] < rates[-1]
