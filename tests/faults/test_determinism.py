"""Determinism guarantees of the chaos harness.

Two properties the whole PR rests on:

* **faults-off identity**: a campaign with ``fault_plan=None`` and one
  with an empty plan are byte-identical -- arming the harness without
  clauses costs nothing and perturbs nothing;
* **faulted replay**: a campaign under a real fault plan is itself a
  pure function of the seed, including across interpreter boundaries
  and ``PYTHONHASHSEED`` values -- same seed, same lost messages, same
  crashed peers, same tampered downloads.
"""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.core.measure import CampaignConfig
from repro.core.measure.campaign import run_limewire_campaign
from repro.faults import FaultPlan
from repro.peers.profiles import GnutellaProfile

REPO_ROOT = Path(__file__).resolve().parents[2]


def store_digest(result) -> str:
    digest = hashlib.sha256()
    for record in result.store:
        digest.update(json.dumps(record.to_json(), sort_keys=True).encode())
    return digest.hexdigest()


def test_empty_plan_is_identical_to_no_plan():
    profile = GnutellaProfile().scaled(0.3)
    off = run_limewire_campaign(
        CampaignConfig(seed=5, duration_days=0.05, fault_plan=None),
        profile=profile)
    empty = run_limewire_campaign(
        CampaignConfig(seed=5, duration_days=0.05, fault_plan=FaultPlan()),
        profile=profile)
    assert len(off.store) > 0
    assert store_digest(off) == store_digest(empty)
    assert empty.faults is None  # nothing was armed


_SCRIPT = """
import hashlib, json
from repro.core.measure import CampaignConfig
from repro.core.measure.campaign import run_limewire_campaign
from repro.faults import FaultPlan
from repro.peers.profiles import GnutellaProfile
from repro.simnet.clock import days

duration = 0.05
plan = FaultPlan.envelope("severe", days(duration))
result = run_limewire_campaign(
    CampaignConfig(seed=5, duration_days=duration, fault_plan=plan),
    profile=GnutellaProfile().scaled(0.3))
digest = hashlib.sha256()
for record in result.store:
    digest.update(json.dumps(record.to_json(), sort_keys=True).encode())
print(json.dumps({
    "store_sha256": digest.hexdigest(),
    "records": len(result.store),
    "injected": dict(sorted(result.faults.injected.items())),
    "drop_causes": dict(sorted(result.world.transport.drop_causes.items())),
}, sort_keys=True))
"""


def run_faulted_campaign(hash_seed: int) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True, text=True, env=env, cwd=str(REPO_ROOT),
        timeout=600)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_faulted_campaign_replays_bit_identically():
    first = run_faulted_campaign(hash_seed=0)
    second = run_faulted_campaign(hash_seed=31337)
    assert first["records"] > 0
    assert first["injected"]  # the severe plan actually fired
    assert first == second, (
        f"faulted campaign varies across interpreters: "
        f"{first} != {second}")
