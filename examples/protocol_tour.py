#!/usr/bin/env python3
"""Protocol tour: drive the Gnutella and OpenFT stacks by hand.

The reproduction's substrates are usable libraries in their own right.
This example builds a tiny Gnutella overlay (2 ultrapeers, 3 leaves, one
infected with a query-echo worm), shows the actual handshake and
descriptor bytes, issues a query, and decodes the hits -- then does the
OpenFT equivalent.

Usage::

    python examples/protocol_tour.py
"""

from repro.files.catalog import CatalogConfig, ContentCatalog
from repro.files.library import SharedFile, SharedLibrary
from repro.gnutella import (GnutellaNetwork, GnutellaServent, Query,
                            TopologyConfig, connect_request, frame,
                            new_guid)
from repro.malware.corpus import limewire_strains
from repro.malware.infection import HostInfection
from repro.openft import (CLASS_SEARCH, CLASS_USER, OpenFTNetwork,
                          OpenFTNode, SearchRequest, encode_packet)
from repro.simnet import AddressAllocator, Simulator, Transport


def gnutella_tour() -> None:
    print("=" * 60)
    print("Gnutella 0.6")
    print("=" * 60)

    sim = Simulator(seed=42)
    transport = Transport(sim)
    allocator = AddressAllocator(sim.stream("addr"))
    catalog = ContentCatalog(CatalogConfig(works=50), sim.stream("cat"))
    strains = limewire_strains()

    # wire bytes, for the curious
    offer = connect_request("LimeWire/4.12.3", ultrapeer=False,
                            listen_ip="10.0.0.5", port=6346)
    print("\nhandshake leg 1 on the wire:")
    print(offer.encode().decode("ascii").replace("\r\n", "\\r\\n\n"))

    ultrapeers = [GnutellaServent(sim, transport, f"up{i}",
                                  allocator.allocate(), role="ultrapeer")
                  for i in range(2)]
    leaves = []
    for index in range(3):
        library = SharedLibrary()
        for _ in range(5):
            version = catalog.sample_version(sim.stream("pop"))
            library.add(SharedFile.make(catalog.decorate_filename(version),
                                        version.size, version.extension,
                                        version.blob))
        infection = None
        if index == 0:  # one echo-infected host behind NAT
            infection = HostInfection()
            infection.infect(strains[0], library, sim.stream("mal"))
        leaves.append(GnutellaServent(
            sim, transport, f"leaf{index}",
            allocator.allocate(behind_nat=index == 0),
            role="leaf", library=library, infection=infection))

    GnutellaNetwork.wire(ultrapeers, leaves, sim.stream("topo"),
                         TopologyConfig(ultrapeer_degree=2,
                                        leaf_attachments=2))
    network = GnutellaNetwork(sim, transport, ultrapeers, leaves, strains)
    crawler = network.create_crawler("crawler", allocator.allocate())

    query = Query(min_speed_kbps=0, criteria="norton full")
    raw = frame(new_guid(sim.stream("g")), query, ttl=4)
    print(f"a Query descriptor is {len(raw)} bytes: "
          f"header={raw[:23].hex()} payload={raw[23:].hex()}")

    hits = []
    crawler.on_local_hit = lambda hit, header: hits.append(hit)
    crawler.originate_query("norton full")
    sim.run_until(60.0)

    print(f"\nquery 'norton full' -> {len(hits)} QueryHit descriptor(s):")
    for hit in hits:
        for result in hit.results:
            marker = " (PRIVATE!)" if hit.address.startswith(
                ("10.", "192.168.")) else ""
            print(f"  {result.filename:<40s} {result.file_size:>10d} B "
                  f"from {hit.address}{marker}")

    if hits:
        first = hits[0]
        blob = network.fetch(first.servent_guid,
                             first.results[0].sha1_urn)
        print(f"\ndownloading the first hit -> "
              f"{'got ' + str(blob.size) + ' bytes' if blob else 'failed'}")


def openft_tour() -> None:
    print()
    print("=" * 60)
    print("OpenFT")
    print("=" * 60)

    sim = Simulator(seed=43)
    transport = Transport(sim)
    allocator = AddressAllocator(sim.stream("addr"))
    catalog = ContentCatalog(CatalogConfig(works=50), sim.stream("cat"))

    search_node = OpenFTNode(sim, transport, "search0",
                             allocator.allocate(),
                             klass=CLASS_SEARCH | CLASS_USER)
    users = []
    for index in range(3):
        library = SharedLibrary()
        for _ in range(6):
            version = catalog.sample_version(sim.stream("pop"))
            library.add(SharedFile.make(catalog.decorate_filename(version),
                                        version.size, version.extension,
                                        version.blob))
        users.append(OpenFTNode(sim, transport, f"user{index}",
                                allocator.allocate(), klass=CLASS_USER,
                                library=library))

    network = OpenFTNetwork(sim, transport, [search_node], users)
    network.wire(sim.stream("topo"), parents_per_user=1)
    sim.run_until(120.0)

    request = SearchRequest(search_id=1, ttl=1, query="free music")
    print(f"\na SearchRequest packet: {encode_packet(request).hex()}")

    crawler = network.create_crawler("crawler", allocator.allocate())
    sim.run_until(sim.now + 30.0)
    results = []
    crawler.on_search_result = results.append
    sample_share = next(iter(users[0].library))
    query = " ".join(sorted(sample_share.tokens)[:2])
    crawler.originate_search(query)
    sim.run_until(sim.now + 60.0)

    real = [r for r in results if not r.is_end_marker]
    print(f"\nsearch {query!r} -> {len(real)} result(s):")
    for response in real:
        print(f"  {response.filename:<40s} {response.size:>10d} B "
              f"md5={response.md5[:8]}... from {response.host}")


if __name__ == "__main__":
    gnutella_tour()
    openft_tour()
