#!/usr/bin/env python3
"""Investigating a malware source, the way the paper's authors did.

After measuring OpenFT, the study found one host behind 67% of all
malicious responses.  This example goes one step further with the
protocol tooling: it runs a campaign, ranks malware-serving hosts, then
*browses* the top host (OpenFT's share-listing primitive), downloads and
scans its shares, and prints the host's full profile -- bait names, the
single body behind them, and the address class it advertises.

Usage::

    python examples/investigate_host.py
"""

from repro.core import CampaignConfig, run_openft_campaign
from repro.core.analysis import top_malware
from repro.core.analysis.sources import host_concentration
from repro.malware.corpus import openft_strains
from repro.scanner import ScanEngine, database_for_strains
from repro.simnet.addresses import classify_address


def main() -> None:
    print("phase 1: measurement campaign against OpenFT...")
    result = run_openft_campaign(CampaignConfig(seed=2, duration_days=1.0))
    store, world = result.store, result.world
    network = world.network

    rows = top_malware(store)
    if not rows:
        print("no malware observed; try another seed")
        return
    top_strain = rows[0].name
    hosts = host_concentration(store, top_strain)
    print(f"top strain: {top_strain} "
          f"({rows[0].share:.0%} of malicious responses)")
    print(f"served by {len(hosts)} host(s); "
          f"top host share {hosts[0].share:.0%}\n")

    suspect_host = hosts[0].responder_host
    suspect = network.node_by_host(suspect_host)
    if suspect is None:
        print(f"host {suspect_host} left the network; cannot browse")
        return

    print(f"phase 2: browsing {suspect_host} "
          f"({classify_address(suspect_host)} address)...")
    sim = result.sim
    crawler = network.nodes["crawler"]
    listings = []
    crawler.on_browse_result = listings.append
    crawler.originate_browse(suspect.endpoint_id)
    sim.run_until(sim.now + 120.0)
    shares = [item for item in listings if not item.is_end_marker]
    print(f"the host lists {len(shares)} shared files")

    print("\nphase 3: downloading and scanning every share...")
    engine = ScanEngine(database_for_strains(openft_strains()))
    verdicts = {}
    distinct_bodies = set()
    for share in shares:
        blob = network.fetch(suspect_host, share.md5,
                             requester_id="crawler")
        if blob is None:
            verdicts[share.filename] = "(not downloadable)"
            continue
        verdict = engine.scan(blob)
        verdicts[share.filename] = verdict.primary_name or "clean"
        if not verdict.clean:
            distinct_bodies.add(share.md5)

    dirty = {name: verdict for name, verdict in verdicts.items()
             if verdict not in ("clean", "(not downloadable)")}
    print(f"{len(dirty)} of {len(shares)} shares are malicious, "
          f"all {len(distinct_bodies)} distinct bodies "
          f"of the same strain:")
    for name, verdict in sorted(dirty.items())[:12]:
        print(f"  {name:<44s} -> {verdict}")
    if len(dirty) > 12:
        print(f"  ... and {len(dirty) - 12} more bait names")


if __name__ == "__main__":
    main()
