#!/usr/bin/env python3
"""Deploying the size filter: learn on one trace, protect a future user.

The paper's operational pitch is that a client could ship a tiny
dictionary of known-bad sizes.  This example checks the pitch honestly:
the dictionary is learned from one measurement campaign and then
evaluated against a *different* campaign (new seed -- different churn,
different infected hosts, different queries), i.e. out-of-sample, the way
a deployed Limewire would experience it.

Usage::

    python examples/size_filter_deployment.py
"""

from repro.core import CampaignConfig, run_limewire_campaign
from repro.core.filtering import (ExistingLimewireFilter, SizeBasedFilter,
                                  evaluate_filter)
from repro.malware.corpus import limewire_strains


def main() -> None:
    print("phase 1: measurement campaign (the operator's vantage)...")
    training = run_limewire_campaign(
        CampaignConfig(seed=11, duration_days=0.5))
    size_filter = SizeBasedFilter.learn(training.store, top_n=3)
    print(f"  learned dictionary: {sorted(size_filter.blocked_sizes)}")

    print("\nphase 2: an ordinary user's client, weeks later "
          "(fresh world)...")
    deployment = run_limewire_campaign(
        CampaignConfig(seed=99, duration_days=0.5))

    size_report = evaluate_filter(size_filter, deployment.store)
    existing_report = evaluate_filter(
        ExistingLimewireFilter.stale_blocklist(limewire_strains()),
        deployment.store)

    print(f"\n  responses the user would have seen: "
          f"{size_report.malicious_total + size_report.clean_total}")
    print(f"  of which malicious:                 "
          f"{size_report.malicious_total}")
    print("\n                       detection   false positives")
    print(f"  existing mechanisms  {existing_report.detection_rate:9.1%}"
          f"   {existing_report.false_positive_rate:15.2%}")
    print(f"  size-based filter    {size_report.detection_rate:9.1%}"
          f"   {size_report.false_positive_rate:15.2%}")

    if size_report.detection_rate > 0.95:
        print("\nout-of-sample detection holds: worm bodies do not change "
              "size between campaigns, so the dictionary transfers.")
    else:
        print("\nout-of-sample detection degraded -- the dominant strains "
              "changed between training and deployment.")


if __name__ == "__main__":
    main()
