#!/usr/bin/env python3
"""Longitudinal view: a week of measurement, like the paper's month.

Runs a 7-virtual-day Limewire campaign and reports the time dimension the
short examples skip: the daily malicious share (stable), the arrival of
previously-unseen malware-serving hosts (passive worms keep recruiting),
and the sample census showing thousands of malicious responses collapsing
onto a handful of byte-identical bodies.

Usage::

    python examples/longitudinal.py [--days N]   (default 7; ~1 min)
"""

import argparse

from repro.core import CampaignConfig, run_limewire_campaign
from repro.core.analysis import (daily_series, new_hosts_per_day,
                                 sample_census)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=7.0)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    print(f"collecting {args.days:g} virtual days of Limewire data...")
    result = run_limewire_campaign(
        CampaignConfig(seed=args.seed, duration_days=args.days))
    store = result.store
    print(f"{len(store)} responses from "
          f"{store.unique_hosts()} hosts\n")

    print("day  responses  downloadable  malicious  share   new mal hosts")
    fresh_hosts = new_hosts_per_day(store)
    for point in daily_series(store):
        fresh = fresh_hosts[point.day] if point.day < len(fresh_hosts) else 0
        print(f"{point.day:3d}  {point.responses:9d}  "
              f"{point.downloadable:12d}  {point.malicious:9d}  "
              f"{point.malicious_share:6.1%}  {fresh:13d}")

    samples = sample_census(store)
    malicious_total = len(store.malicious_responses())
    print(f"\n{malicious_total} malicious responses map onto "
          f"{len(samples)} distinct samples:")
    print("responses  hosts  size (bytes)  malware")
    for sample in samples[:10]:
        print(f"{sample.responses:9d}  {sample.hosts:5d}  "
              f"{sample.size:12d}  {sample.malware_name}")


if __name__ == "__main__":
    main()
