#!/usr/bin/env python3
"""The full study: regenerate every table and figure for both networks.

Runs one Limewire and one OpenFT campaign, saves the raw measurement
stores as JSON-lines (so they can be re-analysed without re-simulating,
like the paper's month of logs), and prints T1-T6 and F1-F4.

With ``--replicate N`` the study additionally re-runs each network under
N seeds (fanned out over ``--workers`` processes, one per CPU by
default) and prints the seed-dependent range of every headline metric.

With ``--telemetry-dir DIR`` every campaign runs fully instrumented:
``tail -f DIR/<network>_journal.jsonl`` shows live progress, and the
Prometheus metrics plus span chains are dumped alongside when each
campaign finishes (replications get per-seed files plus a merged
textfile).

With ``--serve-port P`` (requires ``--telemetry-dir``) the whole study
is observable live over HTTP while it runs: an HTML dashboard at ``/``,
Prometheus ``/metrics``, journal tails and trace/hotspot endpoints.
The server is read-only -- results are identical with it on or off.

Usage::

    python examples/full_study.py [--days N] [--seed S] [--out DIR]
                                  [--replicate N] [--workers W]
                                  [--telemetry-dir DIR] [--serve-port P]
"""

import argparse
from pathlib import Path

from repro.core import CampaignConfig, run_limewire_campaign, \
    run_openft_campaign
from repro.core import reports
from repro.core.analysis import top_malware
from repro.core.experiments import run_replications
from repro.core.filtering import (ExistingLimewireFilter, SizeBasedFilter,
                                  evaluate_filters)
from repro.malware.corpus import limewire_strains
from repro.telemetry import (CampaignTelemetry, ObservatoryHub,
                             TelemetryServer)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=1.0,
                        help="virtual days to measure (paper: 35)")
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument("--out", type=Path, default=Path("study_output"),
                        help="directory for raw measurement stores")
    parser.add_argument("--replicate", type=int, default=0,
                        help="also run N multi-seed replications per "
                             "network (0 = skip)")
    parser.add_argument("--workers", type=int, default=None,
                        help="processes for the replication fan-out "
                             "(default: one per CPU)")
    parser.add_argument("--shards", type=int, default=1,
                        help="kernel shards per campaign (1 = the plain "
                             "single-process kernel; N >= 2 partitions "
                             "each overlay into N conservative-window "
                             "shards run by worker processes)")
    parser.add_argument("--telemetry-dir", type=Path, default=None,
                        help="instrument the campaigns and dump "
                             "journal/metrics/spans here")
    parser.add_argument("--serve-port", type=int, default=None,
                        help="watch the study live over HTTP while it "
                             "runs (0 = ephemeral port; requires "
                             "--telemetry-dir)")
    args = parser.parse_args()
    if args.serve_port is not None and args.telemetry_dir is None:
        parser.error("--serve-port requires --telemetry-dir")

    def telemetry_for(name):
        if args.telemetry_dir is None:
            return None
        bundle = CampaignTelemetry.for_directory(args.telemetry_dir, name)
        print(f"  (journal: tail -f {bundle.journal.path})")
        return bundle

    config = CampaignConfig(seed=args.seed, duration_days=args.days,
                            shards=args.shards)
    print(f"collecting {args.days} virtual days per network "
          f"(seed={args.seed}"
          + (f", {args.shards} kernel shards" if args.shards > 1 else "")
          + ")...")
    limewire_telemetry = telemetry_for("limewire")
    openft_telemetry = telemetry_for("openft")
    server = None
    if args.serve_port is not None:
        hub = ObservatoryHub(title="full study")
        hub.set_status(seed=args.seed, days=args.days)
        hub.add_campaign("limewire", limewire_telemetry)
        hub.add_campaign("openft", openft_telemetry)
        server = TelemetryServer(hub, port=args.serve_port).start()
        print(f"  observability endpoint: {server.url}")
    try:
        limewire = run_limewire_campaign(config,
                                         telemetry=limewire_telemetry)
        print(f"  limewire: {len(limewire.store)} responses")
        openft = run_openft_campaign(config, telemetry=openft_telemetry)
        print(f"  openft:   {len(openft.store)} responses")
    finally:
        if server is not None:
            server.stop()
    for name, bundle in (("limewire", limewire_telemetry),
                         ("openft", openft_telemetry)):
        if bundle is not None:
            written = bundle.write_outputs(args.telemetry_dir, name)
            print(f"  {name} telemetry: "
                  f"{', '.join(str(p) for p in written.values())}")

    args.out.mkdir(parents=True, exist_ok=True)
    limewire.store.save(args.out / "limewire.jsonl")
    openft.store.save(args.out / "openft.jsonl")
    print(f"raw stores saved under {args.out}/")

    stores = [limewire.store, openft.store]
    print()
    print(reports.render_t1_summary(stores, args.days), end="\n\n")
    print(reports.render_t2_prevalence(stores), end="\n\n")
    print(reports.render_t3_top_malware(limewire.store), end="\n\n")
    print(reports.render_t3_top_malware(openft.store), end="\n\n")

    top_ft = top_malware(openft.store)[0].name
    print(reports.render_t4_sources(limewire.store), end="\n\n")
    print(reports.render_t4_sources(openft.store, top_strain=top_ft),
          end="\n\n")

    filters = [
        ExistingLimewireFilter.stale_blocklist(limewire_strains()),
        SizeBasedFilter.learn(limewire.store),
    ]
    print(reports.render_t5_filters(
        evaluate_filters(filters, limewire.store)), end="\n\n")
    print(reports.render_t6_size_dictionary(limewire.store), end="\n\n")

    print(reports.render_f1_rank_cdf(limewire.store), end="\n\n")
    print(reports.render_f2_size_distribution(limewire.store), end="\n\n")
    print(reports.render_f3_timeseries(limewire.store), end="\n\n")
    print(reports.render_f4_host_cdf(openft.store, top_ft))

    if args.replicate > 0:
        seeds = tuple(range(args.seed, args.seed + args.replicate))
        print(f"\nreplicating over seeds {list(seeds)} "
              f"(parallel workers={args.workers or 'auto'})...")
        for network in ("limewire", "openft"):
            report = run_replications(
                network, seeds, config, workers=args.workers,
                telemetry_dir=args.telemetry_dir,
                serve_port=args.serve_port,
                on_serve=lambda url: print(
                    f"observability endpoint: {url}"))
            print()
            print(report.render())
            if report.telemetry_path is not None:
                print(f"merged telemetry -> {report.telemetry_path}")


if __name__ == "__main__":
    main()
