#!/usr/bin/env python3
"""Quickstart: run a scaled-down version of the paper's measurement.

Runs a half-virtual-day instrumented Limewire campaign against the
simulated Gnutella overlay, then prints the headline numbers the paper
reports: prevalence among downloadable archive/executable responses and
the top-malware concentration.

Usage::

    python examples/quickstart.py [seed]
"""

import sys

from repro.core import CampaignConfig, run_limewire_campaign
from repro.core.analysis import (compute_prevalence, summarize_collection,
                                 top_malware)


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    config = CampaignConfig(seed=seed, duration_days=0.5)

    print(f"running instrumented Limewire campaign "
          f"(seed={seed}, {config.duration_days} virtual days)...")
    result = run_limewire_campaign(config)
    store = result.store

    summary = summarize_collection(store, config.duration_days)
    print(f"\nqueries issued:       {summary.queries_issued}")
    print(f"responses collected:  {summary.responses}")
    print(f"archive/exe subset:   {summary.downloadable_type_responses}")
    print(f"downloads succeeded:  {summary.downloaded_responses}")

    prevalence = compute_prevalence(store)
    print(f"\nmalware prevalence:   {prevalence.fraction:.1%}"
          f"   (paper: 68%)")

    print("\ntop malware by share of malicious responses:")
    for row in top_malware(store)[:5]:
        print(f"  {row.rank}. {row.name:<20s} {row.share:6.1%}"
              f"   (cumulative {row.cumulative_share:.1%})")


if __name__ == "__main__":
    main()
