"""Extension: headline-metric stability across independent worlds.

Runs the scaled campaign under multiple seeds and reports the mean and
range of every headline metric -- the reproducibility evidence behind
the ranges EXPERIMENTS.md quotes.
"""

from repro.core.experiments import run_replications
from repro.core.measure import CampaignConfig
from repro.peers.profiles import GnutellaProfile


def test_ext_replication(benchmark):
    def run():
        return run_replications(
            "limewire", seeds=(3, 4, 5),
            config=CampaignConfig(seed=0, duration_days=0.25),
            profile=GnutellaProfile().scaled(0.5))

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(report.render())
    assert report.metrics["prevalence"].within(0.45, 0.90)
    assert report.metrics["top3_share"].within(0.90, 1.0)
    assert report.metrics["private_share"].within(0.10, 0.45)
