"""Extension: how little data the size filter needs.

Trains the dictionary on growing day-prefixes of a 3-virtual-day
campaign and evaluates out-of-time on the remaining days: one day of
scanning already yields >98% detection.
"""

from repro.core.filtering.learning import learning_curve
from repro.core.measure import CampaignConfig, run_limewire_campaign
from repro.peers.profiles import GnutellaProfile

from .conftest import BENCH_SEED


def test_ext_learning_curve(benchmark):
    def run():
        result = run_limewire_campaign(
            CampaignConfig(seed=BENCH_SEED, duration_days=3.0),
            profile=GnutellaProfile().scaled(0.5))
        return learning_curve(result.store)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("train-days  train-malicious  dict-size  detection  FP")
    for point in points:
        print(f"{point.train_days:10d}  {point.train_malicious:15d}"
              f"  {point.dictionary_size:9d}"
              f"  {point.report.detection_rate:9.1%}"
              f"  {point.report.false_positive_rate:.2%}")
    assert points
    assert points[0].report.detection_rate >= 0.98
    assert all(point.report.false_positive_rate <= 0.01
               for point in points)
