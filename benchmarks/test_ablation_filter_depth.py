"""Ablation: size-filter dictionary depth vs detection/false positives.

Sweeps how many top strains feed the size dictionary.  The paper's choice
(top 3) is the knee: depth 1-2 leaves detection on the table, deeper
dictionaries add sizes without meaningful gains.
"""

from repro.core.filtering.evaluate import evaluate_filter
from repro.core.filtering.sizefilter import SizeBasedFilter


def _sweep(store, depths):
    results = []
    for depth in depths:
        size_filter = SizeBasedFilter.learn(store, top_n=depth)
        report = evaluate_filter(size_filter, store)
        results.append((depth, len(size_filter), report))
    return results


def test_ablation_filter_depth(benchmark, limewire):
    depths = (1, 2, 3, 5, 8)
    results = benchmark(_sweep, limewire.store, depths)
    print()
    print("depth  sizes  detection  false-positives")
    for depth, size_count, report in results:
        print(f"{depth:5d}  {size_count:5d}  {report.detection_rate:9.1%}"
              f"  {report.false_positive_rate:15.2%}")
    by_depth = {depth: report for depth, _, report in results}
    assert by_depth[3].detection_rate >= 0.99
    assert by_depth[3].detection_rate > by_depth[1].detection_rate
    # going deeper than the paper's 3 buys (almost) nothing
    assert (by_depth[8].detection_rate
            - by_depth[3].detection_rate) < 0.01
    assert all(report.false_positive_rate <= 0.01
               for _, _, report in results)
