"""Extension: traffic composition of the measured overlay.

Captures a window of overlay traffic during a mini-campaign and reports
the byte share of each descriptor kind.
"""

from repro.core.analysis.overhead import (classify_gnutella_frame,
                                          overhead_report)
from repro.core.measure import CampaignConfig, run_limewire_campaign
from repro.malware.corpus import limewire_strains
from repro.peers.population import build_gnutella_world
from repro.peers.profiles import GnutellaProfile
from repro.simnet.clock import days
from repro.simnet.kernel import Simulator
from repro.simnet.trace import TransportTrace

from .conftest import BENCH_SEED


def test_ext_overhead(benchmark):
    def capture():
        sim = Simulator(seed=BENCH_SEED)
        world = build_gnutella_world(sim, GnutellaProfile().scaled(0.5),
                                     limewire_strains(),
                                     horizon_s=days(0.1))
        crawler = world.network.bootstrap_crawler("crawler", _address(sim))
        trace = TransportTrace(world.transport, classify_gnutella_frame)
        with trace:
            sim.every(300.0, lambda: crawler.originate_query("free music"),
                      label="query", until=days(0.1))
            sim.run_until(days(0.1))
        return trace

    trace = benchmark.pedantic(capture, rounds=1, iterations=1)
    rows = overhead_report(trace)
    print()
    print("kind        messages      bytes  byte-share")
    for row in rows:
        print(f"{row.kind:<10s}  {row.messages:8d}  {row.bytes:9d}"
              f"  {row.byte_share:9.1%}")
    kinds = {row.kind for row in rows}
    assert {"query", "query-hit"} <= kinds


def _address(sim):
    from repro.simnet.addresses import AddressAllocator
    return AddressAllocator(sim.stream("bench:addr")).allocate_public()
