"""T6: regenerate the per-strain size dictionary behind the size filter."""

from repro.core.analysis.sizes import size_dictionary
from repro.core.reports import render_t6_size_dictionary


def test_t6_size_dictionary(benchmark, limewire):
    profiles = benchmark(size_dictionary, limewire.store, 3, 0.95)
    print()
    print(render_t6_size_dictionary(limewire.store))
    assert len(profiles) == 3
    for profile in profiles:
        # the strain occurs at very few exact sizes -- the paper's insight
        assert profile.distinct_sizes <= 3
        assert profile.coverage(profile.common_sizes) >= 0.95
