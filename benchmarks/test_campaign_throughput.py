"""Infrastructure: end-to-end campaign throughput.

Times a small full campaign (world build + flooding + downloads + scans)
so regressions in any layer surface as wall-clock changes here, and
reports scan-engine throughput (scans/sec and verdict-cache hit rate --
the numbers the campaign fast path optimises).
"""

import time

from repro.core.measure import CampaignConfig, run_limewire_campaign
from repro.peers.profiles import GnutellaProfile

from .conftest import BENCH_SEED


def test_campaign_throughput(benchmark):
    config = CampaignConfig(seed=BENCH_SEED, duration_days=0.25)
    profile = GnutellaProfile().scaled(0.5)
    timing = {}

    def run():
        start = time.perf_counter()
        result = run_limewire_campaign(config, profile=profile)
        timing["elapsed"] = time.perf_counter() - start
        return result

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    events = result.sim.events_processed
    engine = result.engine
    scans_per_sec = engine.scan_requests / timing["elapsed"]
    print(f"\n{events} events, {len(result.store)} responses, "
          f"{engine.scan_requests} scan requests / "
          f"{engine.scans_performed} full scans "
          f"({scans_per_sec:,.0f} scans/sec over the campaign, "
          f"cache hit rate {engine.cache_hit_rate:.1%})")
    assert len(result.store) > 100
    assert engine.scan_requests > 0
