"""Infrastructure: end-to-end campaign throughput.

Times a small full campaign (world build + flooding + downloads + scans)
so regressions in any layer surface as wall-clock changes here.
"""

from repro.core.measure import CampaignConfig, run_limewire_campaign
from repro.peers.profiles import GnutellaProfile

from .conftest import BENCH_SEED


def test_campaign_throughput(benchmark):
    config = CampaignConfig(seed=BENCH_SEED, duration_days=0.25)
    profile = GnutellaProfile().scaled(0.5)

    def run():
        return run_limewire_campaign(config, profile=profile)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    events = result.sim.events_processed
    print(f"\n{events} events, {len(result.store)} responses")
    assert len(result.store) > 100
