"""F2: regenerate the size-diversity-per-strain figure."""

from repro.core.analysis.sizes import distinct_size_counts
from repro.core.reports import render_f2_size_distribution


def test_f2_size_distribution(benchmark, limewire):
    counts = benchmark(distinct_size_counts, limewire.store)
    print()
    print(render_f2_size_distribution(limewire.store))
    # every observed strain manifests at a handful of exact sizes
    assert counts
    assert max(counts.values()) <= 4
