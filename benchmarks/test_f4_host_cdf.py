"""F4: regenerate the per-host malicious-response CDF."""

from repro.core.analysis.concentration import top_malware
from repro.core.analysis.sources import host_cdf
from repro.core.reports import render_f4_host_cdf


def test_f4_host_cdf(benchmark, limewire, openft):
    cdf = benchmark(host_cdf, limewire.store)
    top_ft_strain = top_malware(openft.store)[0].name
    print()
    print(render_f4_host_cdf(openft.store, top_ft_strain))
    # Limewire: diffuse across many hosts; OpenFT top strain: one host
    assert len(cdf) > 30
    assert cdf[0] < 0.15
    assert host_cdf(openft.store, top_ft_strain) == [1.0]
