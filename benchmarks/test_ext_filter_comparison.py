"""Extension: the full filter landscape on one campaign.

Adds the oracle hash blocklist (perfect, instantly updated) to the T5
comparison: the paper's four-integer size dictionary performs at the
oracle's level, while the realistically stale blocklist sits at ~6%.
"""

from repro.core.filtering.evaluate import evaluate_filters
from repro.core.filtering.existing import ExistingLimewireFilter
from repro.core.filtering.oracle import OracleHashFilter
from repro.core.filtering.sizefilter import SizeBasedFilter
from repro.core.reports import render_t5_filters
from repro.malware.corpus import limewire_strains


def test_ext_filter_comparison(benchmark, limewire):
    store = limewire.store
    filters = [
        ExistingLimewireFilter.stale_blocklist(limewire_strains()),
        SizeBasedFilter.learn(store),
        OracleHashFilter.learn(store),
    ]
    reports = benchmark(evaluate_filters, filters, store)
    print()
    print(render_t5_filters(reports))
    existing, size, oracle = reports
    assert oracle.detection_rate == 1.0
    assert size.detection_rate >= oracle.detection_rate - 0.01
    assert existing.detection_rate < 0.15
