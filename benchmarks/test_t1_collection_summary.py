"""T1: regenerate the data-collection summary table."""

from repro.core.analysis.summary import summarize_collection
from repro.core.reports import render_t1_summary

from .conftest import BENCH_DAYS


def test_t1_collection_summary(benchmark, limewire, openft):
    stores = [limewire.store, openft.store]
    summary = benchmark(summarize_collection, limewire.store, BENCH_DAYS)
    print()
    print(render_t1_summary(stores, BENCH_DAYS))
    assert summary.responses == len(limewire.store)
    assert summary.queries_issued > 0
