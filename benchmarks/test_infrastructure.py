"""Microbenchmarks of the substrate: codecs, QRP, scanner, kernel.

Not a paper table -- these guard the simulator's performance envelope so
campaign-scale benchmarks stay tractable as the code evolves.
"""

from repro.files.payload import Blob
from repro.gnutella.guid import new_guid
from repro.gnutella.messages import (HitResult, Query, QueryHit,
                                     decode_payload, frame, parse_frame)
from repro.gnutella.qrp import QueryRouteTable, qrp_hash
from repro.malware.corpus import limewire_strains
from repro.malware.infection import strain_body_blob
from repro.openft.packets import SearchResponse, decode_packet, encode_packet
from repro.scanner.database import database_for_strains
from repro.scanner.engine import ScanEngine
from repro.simnet.kernel import Simulator
from repro.simnet.rng import SeededStream


def test_bench_kernel_event_throughput(benchmark):
    def run_events():
        sim = Simulator(seed=1)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.after(0.001, tick)

        sim.after(0.001, tick)
        sim.run_all()
        return count[0]

    assert benchmark(run_events) == 10_000


def test_bench_gnutella_query_roundtrip(benchmark):
    guid = new_guid(SeededStream(1, "g"))
    query = Query(min_speed_kbps=0, criteria="photoshop crack full")

    def roundtrip():
        header, payload = parse_frame(frame(guid, query, ttl=4, hops=0))
        return decode_payload(header, payload)

    assert benchmark(roundtrip) == query


def test_bench_gnutella_queryhit_roundtrip(benchmark):
    guid = new_guid(SeededStream(1, "g"))
    hit = QueryHit(
        port=6346, address="10.2.3.4", speed_kbps=350,
        results=tuple(HitResult(i, 1000 + i, f"result_{i}.exe",
                                "urn:sha1:AAAABBBBCCCCDDDD")
                      for i in range(20)),
        servent_guid=guid)

    def roundtrip():
        header, payload = parse_frame(frame(guid, hit, ttl=3, hops=1))
        return decode_payload(header, payload)

    assert benchmark(roundtrip) == hit


def test_bench_openft_search_response_roundtrip(benchmark):
    response = SearchResponse(search_id=7, host="172.16.1.2", port=1215,
                              http_port=1216, availability=2, size=12345,
                              md5="ab" * 16, filename="windows_keygen.exe")
    assert benchmark(
        lambda: decode_packet(encode_packet(response))) == response


def test_bench_qrp_hash(benchmark):
    tokens = [f"keyword{i}" for i in range(100)]
    benchmark(lambda: [qrp_hash(token) for token in tokens])


def test_bench_qrp_table_match(benchmark):
    table = QueryRouteTable()
    table.build_from(f"file_{i}_name_{i % 7}.exe" for i in range(500))
    benchmark(lambda: [table.might_match("file name") for _ in range(100)])


def test_bench_scanner(benchmark):
    strains = limewire_strains()
    engine = ScanEngine(database_for_strains(strains))
    blobs = [strain_body_blob(strain) for strain in strains]
    blobs.append(Blob(content_key="clean", extension="exe", size=5000))

    def scan_all():
        return [engine.scan(blob).clean for blob in blobs]

    results = benchmark(scan_all)
    assert results[-1] is True
    assert not any(results[:-1])
