"""T4: regenerate the sources analysis (paper: 28% private; 67% single
host for the top OpenFT virus)."""

from repro.core.analysis.concentration import top_malware
from repro.core.analysis.sources import (address_breakdown, top_host_share)
from repro.core.reports import render_t4_sources


def test_t4_sources(benchmark, limewire, openft):
    breakdown = benchmark(address_breakdown, limewire.store)
    top_ft_strain = top_malware(openft.store)[0].name
    print()
    print(render_t4_sources(limewire.store))
    print()
    print(render_t4_sources(openft.store, top_strain=top_ft_strain))
    assert 0.18 <= breakdown.fraction("private") <= 0.36  # paper: 0.28
    assert top_host_share(openft.store, top_ft_strain) == 1.0
