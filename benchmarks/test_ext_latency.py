"""Extension: response-latency percentiles of the measured overlay."""

from repro.core.analysis.latency import latency_summary


def test_ext_latency(benchmark, limewire, openft):
    summary = benchmark(latency_summary, limewire.store)
    print()
    print(summary.render("limewire"))
    ft_summary = latency_summary(openft.store)
    if ft_summary is not None:
        print(ft_summary.render("openft"))
    assert summary is not None
    assert summary.p10 <= summary.p50 <= summary.p90 <= summary.p99
    assert summary.p50 < 5.0  # sub-seconds through a few overlay hops
