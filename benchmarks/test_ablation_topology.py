"""Ablation: flooding reach (ultrapeer degree) vs measured prevalence.

The malicious share is a property of *who answers*, not of how far
queries flood: echo worms and clean sharers are reached by the same
flooding, so prevalence should be roughly flat across mesh degrees, while
the absolute response volume grows with reach.
"""

from dataclasses import replace

from repro.core.analysis.prevalence import compute_prevalence
from repro.core.measure import CampaignConfig, run_limewire_campaign
from repro.peers.profiles import GnutellaProfile

from .conftest import BENCH_SEED


def _run_with_degree(degree: int):
    profile = replace(GnutellaProfile().scaled(0.5),
                      ultrapeer_degree=degree)
    config = CampaignConfig(seed=BENCH_SEED, duration_days=0.5)
    return run_limewire_campaign(config, profile=profile)


def test_ablation_topology(benchmark):
    def sweep():
        return {degree: _run_with_degree(degree) for degree in (3, 8)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("degree  responses  prevalence")
    fractions = {}
    for degree, result in results.items():
        report = compute_prevalence(result.store)
        fractions[degree] = report.fraction
        print(f"{degree:6d}  {len(result.store):9d}  {report.fraction:.1%}")
    assert abs(fractions[3] - fractions[8]) < 0.15  # shape is flat
