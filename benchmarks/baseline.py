#!/usr/bin/env python3
"""Benchmark baseline runner: record the perf trajectory of the repo.

Times the hot paths the campaign fast-path and chaos-harness work
target --

* **events/sec**: raw kernel throughput over a churn-heavy timer
  program that cancels 3 of every 5 timers.  The plain and
  telemetry-attached legs run *interleaved in the same measurement
  window* over the *identical workload*, so ``events_per_sec`` and
  ``events_per_sec_telemetry`` are directly comparable and the
  overhead ratio is immune to machine-load drift (gated in CI via
  ``--assert-overhead``).  Timers land 1..1000 s out, so the leg
  exercises the tiered scheduler's wheel level 0 and the bulk
  slot-absorption path into the calendar window as the clock chases
  the horizon -- not the window alone;
* **scheduler A/B**: the same cancel-heavy program pushed through the
  tiered scheduler and the reference binary heap, interleaved in one
  window, timing push+cancel+drain end to end (where O(1) lazy
  cancellation pays off).  Its mixed workload spans every tier:
  calendar window, wheel levels 0-1 and the overflow bucket.  The two
  drain orders are asserted identical pair-by-pair and a campaign-level
  equivalence check (event digest + measurement-store sha256, fast vs
  reference twins) rides along in the same run;
* **data-plane msgs/sec**: framed Gnutella fan-out through the
  transport -- encode-once + header re-stamp per hop, ``send_many``
  delivery -- with the frame-cache hit rate, the tracemalloc-measured
  in-flight envelope footprint, and a fast-vs-reference delivery-schedule
  assertion every run;
* **scans/sec**: the scan engine over a duplicate-heavy blob workload
  (the paper's: a handful of malware instances dominate responses), with
  the verdict-cache hit rate -- both sourced from the engine's telemetry
  registry, the same instruments a campaign exports;
* **fault-harness overhead**: the same campaign run with
  ``fault_plan=None`` vs an armed-but-idle :class:`FaultPlan` (all
  probabilities zero), proving the chaos taps cost nothing when no
  fault fires and the faults-off hot path is untouched;
* **sharded-kernel overhead**: the plain kernel vs the sharded campaign
  driver at ``shards=1`` (the degenerate fast path), interleaved in one
  window with the event digest and store sha256 asserted identical
  every rep, plus an informational ``shards=2`` window-loop leg --
  gated in CI via ``--assert-overhead sharded_overhead_pct=10``;
* **replication wall-clock**: a multi-seed `run_replications` campaign,
  serial vs process-pool parallel;
* **supervision overhead**: the same multi-seed campaign under the
  plain pool vs the watchdogged ``supervised_map`` pool (per-seed
  heartbeats, stall/deadline watchdogs), reports asserted identical,
  gated in CI via ``--assert-overhead resilience_overhead_pct=10``;

-- and writes the numbers to ``benchmarks/BENCH_<rev>.json`` so
``scripts/bench_compare.py`` can diff any two revisions.

Usage::

    PYTHONPATH=src python benchmarks/baseline.py [--quick] [--out DIR]
                                                 [--workers W] [--rev R]
                                                 [--assert-overhead PCT]

Every leg runs with the determinism sanitizer OFF (there is no flag to
turn it on here, deliberately): ``DeterminismSanitizer`` patches module
attributes on hot paths, so a sanitized leg would time the tripwires
rather than the simulator.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path


def _detect_rev() -> str:
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, check=True,
                             cwd=Path(__file__).resolve().parent)
        return out.stdout.strip() or "dev"
    except (OSError, subprocess.CalledProcessError):
        return "dev"


def bench_kernel(total: int) -> dict:
    """Kernel throughput, plain and with telemetry, same window.

    One workload -- schedule ``total`` timers 1..1000 s out, cancel 3
    of every 5 (peers going offline), time the drain -- run twice per
    repetition: once plain, once with a ``KernelTelemetry`` attached.
    The legs alternate inside the same measurement window and take
    best-of-5 each, so the overhead ratio sees the same machine-load
    drift on both sides and ``events_per_sec_telemetry`` can never
    beat ``events_per_sec`` just because it ran a friendlier program
    (the pre-PR6 anomaly: the telemetry leg used to time a cancel-free
    workload).
    """
    from repro.simnet.kernel import Simulator
    from repro.telemetry import KernelTelemetry, MetricRegistry

    def one_run(telemetry):
        sim = Simulator(seed=7, telemetry=telemetry)
        counter = [0]

        def fire() -> None:
            counter[0] += 1

        events = [sim.at(float(i % 1000) + 1.0, fire, label="bench")
                  for i in range(total)]
        # churn: cancel 3 of every 5 timers -- past the 50% dead
        # fraction, so tombstone purging kicks in on both twins
        for index, event in enumerate(events):
            if index % 5 < 3:
                sim.cancel(event)
        start = time.perf_counter()
        sim.run_all()
        return time.perf_counter() - start, counter[0], sim

    registry = MetricRegistry()
    plain_times, telemetry_times = [], []
    fired = compactions = 0
    for _ in range(5):
        elapsed, fired, sim = one_run(None)
        plain_times.append(elapsed)
        compactions = sim.queue.compactions
        elapsed, fired_telemetry, _ = one_run(KernelTelemetry(registry))
        telemetry_times.append(elapsed)
        if fired_telemetry != fired:
            raise AssertionError(
                f"telemetry leg fired {fired_telemetry} events, "
                f"plain leg fired {fired}: workloads drifted apart")
    plain_s = min(plain_times)
    telemetry_s = min(telemetry_times)
    sampled = registry.get("sim_callback_wall_seconds")
    return {
        "events_per_sec": fired / plain_s if plain_s else 0.0,
        "events_fired": fired,
        "events_cancelled": total - fired,
        "queue_compactions": compactions,
        "events_per_sec_telemetry": (fired / telemetry_s
                                     if telemetry_s else 0.0),
        "telemetry_overhead_pct": ((telemetry_s - plain_s) / plain_s
                                   * 100.0 if plain_s else 0.0),
        "telemetry_sampled_callbacks": sampled.count if sampled else 0,
    }


def bench_scheduler(total: int, days: float) -> dict:
    """Cancel-heavy scheduler A/B: tiered queue vs reference heap.

    Both twins execute the identical program -- push ``total`` timers,
    cancel 7 of every 10, drain to empty -- with the legs interleaved
    in one measurement window, timing push+cancel+drain end to end so
    the tiered queue's O(1) lazy cancellation (whole tombstone buckets
    dropped without sifting) shows up against the heap's compaction
    sweeps.  The workload is spread across every tier: most timers land
    in wheel level 0 (up to ~4000 s out), a sprinkle in level 1, and
    the drain migrates them through the calendar window.  Each
    repetition asserts the two drain orders identical pair-by-pair;
    afterwards a full campaign replays on both scheduler twins via
    ``run_equivalence_check`` and the event digests, measurement-store
    sha256 and headline metrics must match -- throughput and
    behaviour-preservation proved in the same run.
    """
    from repro.devtools.selfcheck import run_equivalence_check
    from repro.simnet.events import EventQueue
    from repro.simnet.sched import TieredEventQueue

    # Weyl-style deterministic scatter over 0..4000 s: wheel level 0
    # territory, no entropy source needed
    times = [((index * 2654435761) % 4_000_000) / 1000.0
             for index in range(total)]
    for index in range(0, total, 97):
        times[index] = 50_000.0 + float(index)  # wheel level 1

    def fire() -> None:
        pass

    def one_leg(queue):
        start = time.perf_counter()
        events = [queue.push(when, fire) for when in times]
        for index, event in enumerate(events):
            if index % 10 < 7:
                queue.cancel(event)
        order = []
        while True:
            event = queue.pop()
            if event is None:
                break
            order.append((event.time, event.seq))
        return time.perf_counter() - start, order

    tiered_times, heap_times = [], []
    for _ in range(3):
        elapsed, tiered_order = one_leg(TieredEventQueue())
        tiered_times.append(elapsed)
        elapsed, heap_order = one_leg(EventQueue())
        heap_times.append(elapsed)
        if tiered_order != heap_order:
            raise AssertionError(
                "tiered scheduler drain order diverged from the "
                "reference heap")
    tiered_s = min(tiered_times)
    heap_s = min(heap_times)

    # behaviour-preservation leg: one campaign on each scheduler twin,
    # compared down to the event stream and collected bytes (sanitizer
    # off, as everywhere in this file -- it patches hot paths)
    check = run_equivalence_check("limewire", seed=3, days=days,
                                  sanitize=False)
    if not check.ok:
        raise AssertionError(
            "scheduler fast path diverged from the reference heap:\n"
            + check.render())

    return {
        "scheduler_events_per_sec": total / tiered_s if tiered_s else 0.0,
        "scheduler_ref_events_per_sec": total / heap_s if heap_s else 0.0,
        "scheduler_speedup": heap_s / tiered_s if tiered_s else 0.0,
        "scheduler_equivalence_events": check.events,
    }


def bench_dataplane(messages: int) -> dict:
    """Data-plane throughput: encode-once fan-out through the transport.

    A ring of peers relays framed Gnutella queries the way a flooding
    servent does: each message is framed once at its origin (one
    frame-cache miss) and re-stamped per forwarding hop (hits), then
    fanned out to several peers with ``send_many``.  Reports messages/s
    through the full frame+schedule+deliver pipeline, the frame-cache
    hit rate, and the per-message in-flight envelope footprint measured
    with tracemalloc (untimed side leg, so tracing never skews the
    throughput number).  Every run also replays a slice of the workload
    on the reference slow path -- per-hop re-encode, closure-scheduled
    deliveries -- and asserts the delivery schedule is identical.
    """
    import tracemalloc

    from repro.gnutella.messages import FrameCache, Query, frame
    from repro.simnet import fastpath
    from repro.simnet.kernel import Simulator
    from repro.simnet.transport import LatencyModel, Transport

    peers = 16
    fan_out = 7
    hops = 3
    query = Query(min_speed_kbps=0, criteria="popular title")

    def build():
        sim = Simulator(seed=13)
        transport = Transport(sim, LatencyModel())
        ids = [f"p{i}" for i in range(peers)]
        return sim, transport, ids

    def send_round(transport, ids, cache, index):
        """One message: origin frame + ``hops`` re-stamped forwards."""
        guid = index.to_bytes(16, "little")
        queued = 0
        for hop in range(hops + 1):
            if cache is not None:
                raw = cache.frame(guid, query, ttl=7 - hop, hops=hop)
            else:
                raw = frame(guid, query, ttl=7 - hop, hops=hop)
            src = ids[(index + hop) % peers]
            dsts = [ids[(index + hop + k) % peers]
                    for k in range(1, fan_out + 1)]
            queued += transport.send_many(src, dsts, raw)
        return queued

    def run_leg(count, collect=None, use_cache=True):
        sim, transport, ids = build()
        if collect is None:
            handler = lambda e: None  # noqa: E731
        else:
            handler = lambda e: collect.append((sim.now, e.dst))  # noqa: E731
        for endpoint_id in ids:
            transport.attach(endpoint_id, handler)
        cache = FrameCache(capacity=512) if use_cache else None
        queued = 0
        for index in range(count):
            queued += send_round(transport, ids, cache, index)
        sim.run_all()
        return queued, cache

    # correctness first: the fast path must be free, not just fast --
    # the slow leg re-encodes every hop, so this also proves the header
    # patching is byte-identical to a fresh encode
    fast_log, slow_log = [], []
    run_leg(50, collect=fast_log)
    previous = fastpath.set_slow_path(True)
    try:
        run_leg(50, collect=slow_log, use_cache=False)
    finally:
        fastpath.set_slow_path(previous)
    if fast_log != slow_log:
        raise AssertionError(
            "dataplane fast path diverged from the reference path")

    # timed leg (no tracing)
    rounds = max(1, messages // ((hops + 1) * fan_out))
    start = time.perf_counter()
    queued, cache = run_leg(rounds)
    elapsed = time.perf_counter() - start

    # footprint leg: queue a slice, snapshot while everything is in
    # flight, attribute the allocations made by transport.py (envelopes
    # plus their scheduling)
    tracemalloc.start()
    sim, transport, ids = build()
    for endpoint_id in ids:
        transport.attach(endpoint_id, lambda e: None)
    probe_cache = FrameCache(capacity=512)
    before = tracemalloc.take_snapshot()
    probed = 0
    for index in range(200):
        probed += send_round(transport, ids, probe_cache, index)
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    envelope_bytes = sum(
        stat.size_diff for stat in after.compare_to(before, "filename")
        if stat.traceback[0].filename.endswith("transport.py"))

    return {
        "dataplane_msgs_per_sec": queued / elapsed if elapsed else 0.0,
        "dataplane_messages": queued,
        "dataplane_frame_cache_hit_rate": cache.hit_rate,
        "dataplane_envelope_bytes_per_msg": (envelope_bytes / probed
                                             if probed else 0.0),
    }


def bench_scans(scans: int) -> dict:
    """Scan throughput over a duplicate-heavy corpus (cache + matcher).

    The reported scans/cache-hit numbers come from the engine's
    telemetry registry -- the same instruments a campaign run exports --
    so the bench and the metrics endpoint cannot drift apart.
    """
    import random

    from repro.files.payload import Blob
    from repro.malware.corpus import limewire_strains
    from repro.malware.infection import strain_body_blob
    from repro.scanner.database import database_for_strains
    from repro.scanner.engine import ScanEngine
    from repro.telemetry import MetricRegistry

    strains = limewire_strains()
    registry = MetricRegistry()
    engine = ScanEngine(database_for_strains(strains), registry=registry)
    infected = [strain_body_blob(strain) for strain in strains]
    clean = [Blob(content_key=f"clean-{i}", extension="mp3",
                  size=3_000_000 + i) for i in range(200)]
    # paper-shaped workload: the top strains dominate, clean files are
    # drawn from a modest pool -- lots of byte-identical repeats
    rng = random.Random(42)
    corpus = []
    for _ in range(scans):
        if rng.random() < 0.65:
            corpus.append(infected[min(rng.randrange(len(infected)),
                                       rng.randrange(len(infected)))])
        else:
            corpus.append(clean[rng.randrange(len(clean))])

    start = time.perf_counter()
    detected = sum(1 for blob in corpus if not engine.scan(blob).clean)
    elapsed = time.perf_counter() - start
    cache_requests = registry.get("scanner_cache_requests_total")
    hits = cache_requests.labels("hit").value
    return {
        "scans_per_sec": (cache_requests.value / elapsed
                          if elapsed else 0.0),
        "scans": int(cache_requests.value),
        "scan_detected": detected,
        "scans_full": int(registry.get("scanner_scans_total").value),
        "cache_hit_rate": (hits / cache_requests.value
                           if cache_requests.value else 0.0),
    }


def bench_chaos(days: float) -> dict:
    """Fault-harness overhead: a campaign with an idle plan armed.

    Two legs over the same seed: ``fault_plan=None`` (no chaos code on
    any hot path) vs an *idle* plan -- every injector tap installed and
    consulted per delivery/fetch, but all probabilities zero so no
    fault ever fires.  The legs must produce identical headline
    metrics (asserted); the wall-clock delta is the standing cost of
    arming the harness, gated in CI via ``--assert-overhead``.
    """
    from repro.core.experiments import replicate_one
    from repro.core.measure.campaign import CampaignConfig
    from repro.faults import (FaultPlan, LatencyStorm, LossBurst,
                              SlowServe, Tamper)
    from repro.peers.profiles import GnutellaProfile
    from repro.simnet.clock import days as days_to_seconds

    profile = GnutellaProfile().scaled(0.5)
    horizon_s = days_to_seconds(days)
    idle_plan = FaultPlan(clauses=(
        LossBurst(0.0, horizon_s, 0.0),
        LatencyStorm(0.0, horizon_s, 0.0, 0.0),
        SlowServe(0.0, horizon_s, 0.0, 5.0, 5.0),
        Tamper(0.0, horizon_s, 0.0, 0.0),
    ))

    def one_run(plan) -> float:
        config = CampaignConfig(seed=11, duration_days=days,
                                fault_plan=plan)
        start = time.perf_counter()
        metrics = replicate_one("limewire", config, profile, seed=11)
        return time.perf_counter() - start, metrics

    # same interleaving rationale as bench_telemetry: overhead is a
    # ratio of two similar numbers, so let load drift hit both legs
    off_times, armed_times = [], []
    off_metrics = armed_metrics = None
    for _ in range(3):
        elapsed, off_metrics = one_run(None)
        off_times.append(elapsed)
        elapsed, armed_metrics = one_run(idle_plan)
        armed_times.append(elapsed)
    if off_metrics != armed_metrics:
        raise AssertionError(
            f"idle fault plan perturbed the measurement: "
            f"{off_metrics!r} != {armed_metrics!r}")
    off_s = min(off_times)
    armed_s = min(armed_times)
    return {
        "chaos_off_s": off_s,
        "chaos_armed_s": armed_s,
        "chaos_idle_overhead_pct": ((armed_s - off_s) / off_s * 100.0
                                    if off_s else 0.0),
    }


def bench_observability(days: float) -> dict:
    """Observability-plane overhead: a served campaign vs a plain one.

    Two legs over the same seed, interleaved in one measurement window
    like every other A/B in this file: server off (plain instrumented
    campaign) vs server on -- a :class:`TelemetryServer` attached to
    the campaign's telemetry bundle with a background thread scraping
    ``/metrics`` throughout the run.  The measurement stores must be
    byte-identical (sha256) between the legs: the server is read-only,
    so watching a campaign cannot change what it measures.  The
    wall-clock delta is the standing cost of being observable, gated in
    CI via ``--assert-overhead observability_overhead_pct=10``.

    Unlike the throughput benches (best-of-N), the gated overhead here
    is the *median of per-rep overheads* across 7 interleaved pairs,
    alternating which leg runs first each rep: each on-rep is paired
    with the off-rep that ran right next to it and the alternation
    cancels monotone drift, so a CPU-frequency wobble skews one pair,
    not the min of one whole leg -- measured to hold the gate within
    +-5% on a noisy 1-core box where min-vs-min swings past 15%.
    """
    import threading
    import urllib.request

    from repro.core.measure.campaign import (CampaignConfig,
                                             run_limewire_campaign)
    from repro.peers.profiles import GnutellaProfile
    from repro.telemetry import CampaignTelemetry

    profile = GnutellaProfile().scaled(0.5)
    config = CampaignConfig(seed=17, duration_days=days)

    def one_run(serve: bool):
        telemetry = CampaignTelemetry()
        server = None
        scrapes = [0]
        stop = threading.Event()
        if serve:
            server = telemetry.serve(port=0, name="bench")

            def scrape_loop() -> None:
                # scrape at 1 Hz: still ~15x more aggressive than a
                # stock Prometheus interval, without turning the gate
                # into a measurement of single-core thread-wakeup
                # contention (a scrape itself costs ~0.3 ms)
                while not stop.is_set():
                    try:
                        with urllib.request.urlopen(
                                server.url + "metrics",
                                timeout=5) as response:
                            if response.status == 200:
                                scrapes[0] += 1
                    except OSError:
                        pass
                    stop.wait(1.0)

            scraper = threading.Thread(target=scrape_loop, daemon=True)
            scraper.start()
        start = time.perf_counter()
        try:
            result = run_limewire_campaign(config, profile=profile,
                                           telemetry=telemetry)
        finally:
            elapsed = time.perf_counter() - start
            stop.set()
            if server is not None:
                server.stop()
        return elapsed, result.store.content_digest(), scrapes[0]

    off_times, on_times = [], []
    off_sha = on_sha = None
    scrapes = 0
    for rep in range(7):
        legs = [False, True] if rep % 2 == 0 else [True, False]
        for serve in legs:
            elapsed, sha, scraped = one_run(serve=serve)
            if serve:
                on_times.append(elapsed)
                on_sha = sha
                scrapes += scraped
            else:
                off_times.append(elapsed)
                off_sha = sha
        if off_sha != on_sha:
            raise AssertionError(
                "serving a campaign changed its measurement store: "
                f"{off_sha} != {on_sha}")
    overheads = sorted((on - off) / off * 100.0
                       for off, on in zip(off_times, on_times) if off)
    return {
        "observability_off_s": min(off_times),
        "observability_on_s": min(on_times),
        "observability_overhead_pct": (
            overheads[len(overheads) // 2] if overheads else 0.0),
        "observability_scrapes": scrapes,
    }


def bench_sharded(days: float) -> dict:
    """Shard-plumbing overhead: plain kernel vs ``shards=1``, interleaved.

    Two legs over the same seed, alternating which runs first each rep:
    the plain single-process kernel vs the sharded driver at
    ``shards=1`` (the degenerate fast path -- one runtime, no window
    loop).  Every rep asserts the two legs bit-identical down to the
    kernel event stream (EventDigest) and the collected bytes
    (measurement-store sha256): the sharded entry point must be the
    *same campaign*, not a similar one.  The gated number is the median
    of per-rep overheads (the drift-cancelling discipline of the
    observability bench), budgeted in CI via ``--assert-overhead
    sharded_overhead_pct=10``.  A ``shards=2`` serial leg rides along
    untimed-against-plain (its store legitimately differs -- N >= 2 is
    a deterministic family, not a bitwise twin) to record the window
    loop's wall clock and window count on this box.
    """
    from repro.core.measure.campaign import (CampaignConfig,
                                             default_profile,
                                             run_limewire_campaign)
    from repro.core.sharded import run_sharded_campaign
    from repro.devtools.sanitizer import EventDigest
    from repro.telemetry import CampaignTelemetry

    profile = default_profile("limewire", 0.5)

    def plain_leg():
        telemetry = CampaignTelemetry()
        digest = EventDigest()
        telemetry.kernel.on_event = digest.on_event
        config = CampaignConfig(seed=23, duration_days=days)
        start = time.perf_counter()
        result = run_limewire_campaign(config, profile=profile,
                                       telemetry=telemetry)
        elapsed = time.perf_counter() - start
        return elapsed, digest.hexdigest(), result.store.content_digest()

    def sharded_leg(shards):
        config = CampaignConfig(seed=23, duration_days=days,
                                shards=shards)
        start = time.perf_counter()
        result = run_sharded_campaign(
            "limewire", config, profile=profile,
            telemetry=CampaignTelemetry(), executor="serial",
            collect_digest=True)
        elapsed = time.perf_counter() - start
        return (elapsed, result.shards.digest,
                result.store.content_digest(), result.shards.windows)

    plain_times, single_times = [], []
    for rep in range(5):
        legs = ["plain", "single"] if rep % 2 == 0 else ["single", "plain"]
        rep_results = {}
        for leg in legs:
            if leg == "plain":
                elapsed, digest, sha = plain_leg()
            else:
                elapsed, digest, sha, windows = sharded_leg(1)
                if windows != 0:
                    raise AssertionError(
                        "shards=1 took the window loop instead of the "
                        "degenerate fast path")
            rep_results[leg] = (digest, sha)
            (plain_times if leg == "plain" else single_times).append(elapsed)
        if rep_results["plain"] != rep_results["single"]:
            raise AssertionError(
                "shards=1 diverged from the plain kernel: "
                f"{rep_results['plain']} != {rep_results['single']}")
    overheads = sorted((single - plain) / plain * 100.0
                       for plain, single in zip(plain_times, single_times)
                       if plain)
    two_s, _digest, _sha, two_windows = sharded_leg(2)
    return {
        "sharded_plain_s": min(plain_times),
        "sharded_single_s": min(single_times),
        "sharded_overhead_pct": (
            overheads[len(overheads) // 2] if overheads else 0.0),
        "sharded_two_shard_s": two_s,
        "sharded_two_shard_windows": two_windows,
    }


def bench_replications(seeds: int, days: float, workers: int) -> dict:
    """Multi-seed campaign wall-clock, serial vs parallel."""
    from repro.core.experiments import run_replications
    from repro.core.measure.campaign import CampaignConfig
    from repro.peers.profiles import GnutellaProfile

    config = CampaignConfig(seed=0, duration_days=days)
    profile = GnutellaProfile().scaled(0.5)
    seed_list = tuple(range(1, seeds + 1))

    start = time.perf_counter()
    serial = run_replications("limewire", seed_list, config,
                              profile=profile, workers=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_replications("limewire", seed_list, config,
                                profile=profile, workers=workers)
    parallel_s = time.perf_counter() - start

    for name in serial.metrics:
        if serial.metrics[name].values != parallel.metrics[name].values:
            raise AssertionError(
                f"parallel metrics diverged from serial for {name!r}")
    return {
        "replication_seeds": seeds,
        "replication_days": days,
        "replication_workers": workers,
        "replication_serial_s": serial_s,
        "replication_parallel_s": parallel_s,
        "replication_speedup": serial_s / parallel_s if parallel_s else 0.0,
    }


def bench_resilience(seeds: int, days: float, workers: int) -> dict:
    """Supervision overhead: watchdogged fan-out vs the plain pool.

    The same multi-seed campaign runs under the trusting process pool
    and under :func:`repro.resilience.supervised_map` (per-seed
    heartbeats, stall + deadline watchdogs, kill-and-requeue).  Legs
    alternate in one measurement window, which order flipped each rep,
    and the gated number is the median of per-rep overheads -- the
    same drift-cancelling discipline as the observability bench.  The
    two reports must agree metric-for-metric, bit for bit: supervision
    may only change *when* a seed's worker is killed, never what a
    surviving seed measures.  Gated in CI via
    ``--assert-overhead resilience_overhead_pct=10``.
    """
    from repro.core.experiments import run_replications
    from repro.core.measure.campaign import CampaignConfig
    from repro.peers.profiles import GnutellaProfile
    from repro.resilience import SupervisionPolicy

    config = CampaignConfig(seed=0, duration_days=days)
    profile = GnutellaProfile().scaled(0.5)
    seed_list = tuple(range(1, seeds + 1))
    policy = SupervisionPolicy(deadline_s=600.0, stall_timeout_s=60.0)

    def one_run(supervised: bool):
        start = time.perf_counter()
        report = run_replications(
            "limewire", seed_list, config, profile=profile,
            workers=workers,
            supervision=policy if supervised else None)
        return time.perf_counter() - start, report

    plain_times, supervised_times = [], []
    plain_report = supervised_report = None
    for rep in range(3):
        legs = [False, True] if rep % 2 == 0 else [True, False]
        for supervised in legs:
            elapsed, report = one_run(supervised)
            if supervised:
                supervised_times.append(elapsed)
                supervised_report = report
            else:
                plain_times.append(elapsed)
                plain_report = report
    for name in plain_report.metrics:
        if (plain_report.metrics[name].values
                != supervised_report.metrics[name].values):
            raise AssertionError(
                f"supervised metrics diverged from plain for {name!r}")
    overheads = sorted((sup - plain) / plain * 100.0
                       for plain, sup in zip(plain_times, supervised_times)
                       if plain)
    return {
        "resilience_plain_s": min(plain_times),
        "resilience_supervised_s": min(supervised_times),
        "resilience_overhead_pct": (
            overheads[len(overheads) // 2] if overheads else 0.0),
    }


def run(quick: bool, workers: int) -> dict:
    results = {}
    print("benchmarking kernel events (plain + telemetry, interleaved)...",
          flush=True)
    results.update(bench_kernel(20_000 if quick else 200_000))
    print(f"  {results['events_per_sec']:,.0f} events/sec plain, "
          f"{results['events_per_sec_telemetry']:,.0f} with telemetry "
          f"(overhead {results['telemetry_overhead_pct']:+.1f}%, "
          f"{results['queue_compactions']} compactions, "
          f"{results['telemetry_sampled_callbacks']} sampled callbacks)")
    print("benchmarking scheduler A/B (tiered vs reference heap)...",
          flush=True)
    results.update(bench_scheduler(20_000 if quick else 200_000,
                                   days=0.02 if quick else 0.05))
    print(f"  {results['scheduler_events_per_sec']:,.0f} events/sec "
          f"tiered vs {results['scheduler_ref_events_per_sec']:,.0f} "
          f"heap ({results['scheduler_speedup']:.2f}x, drain order + "
          f"campaign equivalence asserted)")
    print("benchmarking data plane...", flush=True)
    results.update(bench_dataplane(5_000 if quick else 50_000))
    print(f"  {results['dataplane_msgs_per_sec']:,.0f} msgs/sec "
          f"(frame cache hit rate "
          f"{results['dataplane_frame_cache_hit_rate']:.1%}, "
          f"{results['dataplane_envelope_bytes_per_msg']:.0f} B/msg "
          f"in flight, fast == reference)")
    print("benchmarking scan engine...", flush=True)
    results.update(bench_scans(5_000 if quick else 50_000))
    print(f"  {results['scans_per_sec']:,.0f} scans/sec "
          f"(cache hit rate {results['cache_hit_rate']:.1%}, "
          f"registry-sourced)")
    print("benchmarking fault-harness overhead...", flush=True)
    results.update(bench_chaos(days=0.05 if quick else 0.1))
    print(f"  off {results['chaos_off_s']:.2f}s, "
          f"armed-idle {results['chaos_armed_s']:.2f}s "
          f"(overhead {results['chaos_idle_overhead_pct']:+.1f}%, "
          f"metrics identical)")
    print("benchmarking observability plane (server off vs on, "
          "interleaved)...", flush=True)
    results.update(bench_observability(days=0.05 if quick else 0.1))
    print(f"  off {results['observability_off_s']:.2f}s, "
          f"served {results['observability_on_s']:.2f}s "
          f"(overhead {results['observability_overhead_pct']:+.1f}%, "
          f"{results['observability_scrapes']} concurrent scrapes, "
          f"store sha identical)")
    print("benchmarking sharded kernel (plain vs shards=1, "
          "interleaved)...", flush=True)
    results.update(bench_sharded(days=0.05 if quick else 0.1))
    print(f"  plain {results['sharded_plain_s']:.2f}s, "
          f"shards=1 {results['sharded_single_s']:.2f}s "
          f"(overhead {results['sharded_overhead_pct']:+.1f}%, "
          f"digest + store sha identical every rep); "
          f"shards=2 serial {results['sharded_two_shard_s']:.2f}s "
          f"over {results['sharded_two_shard_windows']} windows")
    print("benchmarking replication campaign...", flush=True)
    results.update(bench_replications(
        seeds=2 if quick else 8, days=0.1 if quick else 0.25,
        workers=workers))
    print(f"  serial {results['replication_serial_s']:.2f}s, "
          f"parallel {results['replication_parallel_s']:.2f}s "
          f"(speedup {results['replication_speedup']:.2f}x)")
    print("benchmarking supervision overhead (plain vs watchdogged pool, "
          "interleaved)...", flush=True)
    results.update(bench_resilience(
        seeds=2 if quick else 4, days=0.1 if quick else 0.25,
        workers=workers))
    print(f"  plain {results['resilience_plain_s']:.2f}s, "
          f"supervised {results['resilience_supervised_s']:.2f}s "
          f"(overhead {results['resilience_overhead_pct']:+.1f}%, "
          f"metrics identical)")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent,
                        help="directory for BENCH_<rev>.json")
    parser.add_argument("--workers", type=int,
                        default=max(2, min(4, os.cpu_count() or 1)),
                        help="workers for the parallel replication leg")
    parser.add_argument("--rev", default=None,
                        help="revision label (default: git short hash)")
    parser.add_argument("--assert-overhead", action="append",
                        default=None, metavar="PCT|NAME=PCT",
                        help="exit non-zero when any *_overhead_pct "
                             "metric exceeds its budget (CI gate).  A "
                             "bare number sets the default budget; "
                             "NAME=PCT overrides one metric (repeat "
                             "the flag to combine, e.g. 30 plus "
                             "observability_overhead_pct=10)")
    args = parser.parse_args(argv)

    rev = args.rev or _detect_rev()
    results = run(quick=args.quick, workers=args.workers)
    payload = {
        "rev": rev,
        "quick": args.quick,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    args.out.mkdir(parents=True, exist_ok=True)
    path = args.out / f"BENCH_{rev}.json"
    # atomic: a benchmark interrupted mid-dump must not leave a torn
    # JSON file that bench_compare then chokes on
    from repro.resilience import atomic_write_text
    atomic_write_text(path,
                      json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    if args.assert_overhead:
        default_budget, per_metric = _parse_overhead_budgets(
            args.assert_overhead)
        over = {}
        for name, value in sorted(results.items()):
            if not name.endswith("_overhead_pct"):
                continue
            budget = per_metric.get(name, default_budget)
            if budget is not None and value > budget:
                over[name] = (value, budget)
        if over:
            detail = ", ".join(
                f"{name} {value:.1f}% (budget {budget:g}%)"
                for name, (value, budget) in over.items())
            print(f"FAIL: overhead budget exceeded: {detail} "
                  f"({results['events_per_sec']:,.0f} events/sec plain "
                  f"vs {results['events_per_sec_telemetry']:,.0f} "
                  f"events/sec with telemetry)", file=sys.stderr)
            return 1
    return 0


def _parse_overhead_budgets(specs):
    """(default budget, per-metric overrides) from repeated flag values.

    A bare number is the default budget for every ``*_overhead_pct``
    metric; ``NAME=PCT`` pins one metric.  With only overrides given,
    un-named metrics are not gated.
    """
    default_budget = None
    per_metric = {}
    for spec in specs:
        spec = str(spec)
        if "=" in spec:
            name, _, value = spec.partition("=")
            per_metric[name.strip()] = float(value)
        else:
            default_budget = float(spec)
    return default_budget, per_metric


if __name__ == "__main__":
    sys.exit(main())
