"""Extension: user-facing impact of deploying the size filter.

Turns T5 into the quantities an operator would quote: exposure
reduction, collateral loss of clean results, and the residual risk of a
random archive/exe download before vs after.
"""

from repro.core.filtering.deployment import simulate_deployment
from repro.core.filtering.sizefilter import SizeBasedFilter


def test_ext_deployment(benchmark, limewire):
    size_filter = SizeBasedFilter.learn(limewire.store)
    report = benchmark(simulate_deployment, size_filter, limewire.store)
    print()
    print(f"exposure reduction:   {report.exposure_reduction:.1%}")
    print(f"collateral loss:      {report.collateral_loss:.2%}")
    print(f"residual risk before: {report.residual_risk_before:.1%}")
    print(f"residual risk after:  {report.residual_risk_after:.2%}")
    assert report.exposure_reduction >= 0.99
    assert report.collateral_loss <= 0.01
    assert report.residual_risk_after < 0.05 < report.residual_risk_before
