"""Ablation: flooding vs LimeWire's dynamic query controller.

Dynamic querying stops probing once enough results flowed back, so the
crawler sees fewer responses per query when the target binds (the real
network's 150-result target never binds in a scaled-down mesh, so the
bench uses a proportionally scaled target) -- but prevalence is a
property of *who answers*, not of probe pacing, so the malicious share
should be essentially unchanged.
"""

from dataclasses import replace

from repro.core.analysis.prevalence import compute_prevalence
from repro.core.measure import CampaignConfig, run_limewire_campaign
from repro.gnutella.servent import GnutellaServent
from repro.peers.profiles import GnutellaProfile

from .conftest import BENCH_SEED

#: scaled controller parameters: the mesh is ~1000x smaller than 2006
#: Gnutella, so the 150-result satisfaction point scales to ~10 and the
#: 2-hop probe radius (which spans the entire scaled mesh) to 1 hop
SCALED_RESULT_TARGET = 10
SCALED_PROBE_TTL = 1


def test_ablation_dynamic_query(benchmark):
    config = CampaignConfig(seed=BENCH_SEED, duration_days=0.5)

    def run_both():
        flooding = run_limewire_campaign(
            config, profile=GnutellaProfile().scaled(0.5))
        original = (GnutellaServent.DQ_RESULT_TARGET,
                    GnutellaServent.DQ_PROBE_TTL)
        GnutellaServent.DQ_RESULT_TARGET = SCALED_RESULT_TARGET
        GnutellaServent.DQ_PROBE_TTL = SCALED_PROBE_TTL
        try:
            dynamic = run_limewire_campaign(
                config, profile=replace(GnutellaProfile().scaled(0.5),
                                        dynamic_queries=True))
        finally:
            (GnutellaServent.DQ_RESULT_TARGET,
             GnutellaServent.DQ_PROBE_TTL) = original
        return flooding, dynamic

    flooding, dynamic = benchmark.pedantic(run_both, rounds=1, iterations=1)
    flooding_prevalence = compute_prevalence(flooding.store).fraction
    dynamic_prevalence = compute_prevalence(dynamic.store).fraction
    print()
    print("mode      responses  prevalence")
    print(f"flooding  {len(flooding.store):9d}  {flooding_prevalence:.1%}")
    print(f"dynamic   {len(dynamic.store):9d}  {dynamic_prevalence:.1%}")
    assert len(dynamic.store) < len(flooding.store)
    assert abs(dynamic_prevalence - flooding_prevalence) < 0.15
