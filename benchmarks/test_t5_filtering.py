"""T5: regenerate the filter comparison (paper: ~6% vs >99%)."""

from repro.core.filtering.evaluate import evaluate_filter, evaluate_filters
from repro.core.filtering.existing import ExistingLimewireFilter
from repro.core.filtering.sizefilter import SizeBasedFilter
from repro.core.reports import render_t5_filters
from repro.malware.corpus import limewire_strains


def test_t5_filtering(benchmark, limewire):
    existing = ExistingLimewireFilter.stale_blocklist(limewire_strains())
    size_filter = SizeBasedFilter.learn(limewire.store)
    reports = benchmark(evaluate_filters, [existing, size_filter],
                        limewire.store)
    print()
    print(render_t5_filters(reports))
    existing_report, size_report = reports
    assert 0.02 <= existing_report.detection_rate <= 0.12  # paper: ~6%
    assert size_report.detection_rate >= 0.99               # paper: >99%
    assert size_report.false_positive_rate <= 0.01
