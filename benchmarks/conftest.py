"""Benchmark fixtures.

Each benchmark regenerates one table/figure of the paper (printed to
stdout, captured in bench logs) and times the analysis that produces it.
The two campaigns are run once per session; campaign-level benchmarks use
``benchmark.pedantic`` with a single round to avoid re-simulating.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core.measure import (CampaignConfig, run_limewire_campaign,
                                run_openft_campaign)

BENCH_SEED = 2
BENCH_DAYS = 1.0


@pytest.fixture(scope="session")
def bench_config() -> CampaignConfig:
    """Campaign configuration used by all analysis benchmarks."""
    return CampaignConfig(seed=BENCH_SEED, duration_days=BENCH_DAYS)


@pytest.fixture(scope="session")
def limewire(bench_config):
    """The Limewire campaign analysed by the benchmarks."""
    return run_limewire_campaign(bench_config)


@pytest.fixture(scope="session")
def openft(bench_config):
    """The OpenFT campaign analysed by the benchmarks."""
    return run_openft_campaign(bench_config)
