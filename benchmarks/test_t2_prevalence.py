"""T2: regenerate the malware-prevalence table (paper: 68% LW / 3% FT)."""

from repro.core.analysis.prevalence import compute_prevalence
from repro.core.reports import render_t2_prevalence


def test_t2_prevalence(benchmark, limewire, openft):
    report = benchmark(compute_prevalence, limewire.store)
    print()
    print(render_t2_prevalence([limewire.store, openft.store]))
    assert 0.55 <= report.fraction <= 0.80  # paper: 0.68
    assert 0.01 <= compute_prevalence(openft.store).fraction <= 0.08
