"""Ablation: disable query-echo worms and watch prevalence collapse.

DESIGN.md calls out query-echo naming as the mechanism behind Limewire's
68%: worms answering *every* query dominate the archive/executable
response mix.  Removing the echo strains (keeping everything else equal)
must collapse prevalence towards OpenFT-like levels.
"""

from dataclasses import replace

from repro.core.analysis.prevalence import compute_prevalence
from repro.core.measure import CampaignConfig, run_limewire_campaign
from repro.peers.profiles import GnutellaProfile, StrainSeeding

from .conftest import BENCH_SEED


def _echo_free_profile() -> GnutellaProfile:
    profile = GnutellaProfile()
    seeding = dict(profile.seeding)
    for strain_id in ("lw-echo-a", "lw-echo-b"):
        seeding[strain_id] = StrainSeeding(initial_hosts=0, final_hosts=0)
    return replace(profile, seeding=seeding)


def test_ablation_echo_naming(benchmark, limewire):
    config = CampaignConfig(seed=BENCH_SEED, duration_days=0.5)

    def run_ablated():
        return run_limewire_campaign(config, profile=_echo_free_profile())

    ablated = benchmark.pedantic(run_ablated, rounds=1, iterations=1)
    baseline_fraction = compute_prevalence(limewire.store).fraction
    ablated_fraction = compute_prevalence(ablated.store).fraction
    print(f"\nprevalence with echo worms:    {baseline_fraction:.1%}")
    print(f"prevalence without echo worms: {ablated_fraction:.1%}")
    assert ablated_fraction < baseline_fraction / 3
    assert ablated_fraction < 0.25
