"""F3: regenerate the daily malicious-share time series."""

from repro.core.analysis.timeseries import daily_series
from repro.core.reports import render_f3_timeseries


def test_f3_timeseries(benchmark, limewire):
    points = benchmark(daily_series, limewire.store)
    print()
    print(render_f3_timeseries(limewire.store))
    assert points
    meaningful = [point for point in points if point.downloadable > 50]
    shares = [point.malicious_share for point in meaningful]
    assert shares and max(shares) - min(shares) < 0.25  # stable share
