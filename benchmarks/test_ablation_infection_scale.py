"""Ablation: dose-response of infected-host count on prevalence.

Scales every strain's seeded host count while holding the clean
population constant: prevalence must rise monotonically with the
infected dose, confirming the measured 68% is a property of the infected
population size rather than an artifact of the pipeline.
"""

from dataclasses import replace

from repro.core.analysis.prevalence import compute_prevalence
from repro.core.measure import CampaignConfig, run_limewire_campaign
from repro.peers.profiles import GnutellaProfile, StrainSeeding

from .conftest import BENCH_SEED


def _with_infection_scale(profile: GnutellaProfile,
                          factor: float) -> GnutellaProfile:
    seeding = {
        strain_id: StrainSeeding(
            initial_hosts=max(0, round(seed.initial_hosts * factor)),
            final_hosts=max(0, round(seed.final_hosts * factor)),
            resident_copies=seed.resident_copies,
            dedicated=seed.dedicated)
        for strain_id, seed in profile.seeding.items()
    }
    return replace(profile, seeding=seeding)


def test_ablation_infection_scale(benchmark):
    base = GnutellaProfile().scaled(0.5)
    config = CampaignConfig(seed=BENCH_SEED, duration_days=0.4)

    def sweep():
        results = {}
        for factor in (0.25, 1.0, 2.0):
            profile = _with_infection_scale(base, factor)
            results[factor] = run_limewire_campaign(config,
                                                    profile=profile)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("infection scale  prevalence")
    fractions = {}
    for factor, result in sorted(results.items()):
        fraction = compute_prevalence(result.store).fraction
        fractions[factor] = fraction
        print(f"{factor:15.2f}  {fraction:.1%}")
    assert fractions[0.25] < fractions[1.0] < fractions[2.0]
    assert fractions[0.25] < 0.55
    assert fractions[2.0] > 0.75
