"""F1: regenerate the malicious-response CDF over malware ranks."""

from repro.core.analysis.concentration import rank_cdf
from repro.core.reports import render_f1_rank_cdf


def test_f1_rank_cdf(benchmark, limewire, openft):
    cdf = benchmark(rank_cdf, limewire.store)
    print()
    print(render_f1_rank_cdf(limewire.store))
    print()
    print(render_f1_rank_cdf(openft.store))
    assert cdf == sorted(cdf)
    assert cdf[-1] == 1.0
    assert cdf[min(2, len(cdf) - 1)] >= 0.95  # steep head in Limewire
