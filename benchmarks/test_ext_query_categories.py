"""Extension: malicious share per query category.

Quantifies the mechanism behind T2 -- archive/executable responses to
*media* queries are almost entirely echo-worm output, while software
queries mix worms with genuine archives.
"""

from repro.core.analysis.categories import category_breakdown


def test_ext_query_categories(benchmark, limewire):
    rows = benchmark(category_breakdown, limewire.store,
                     limewire.world.catalog)
    print()
    print("category    queries  responses  downloadable  malicious  share")
    for row in rows:
        print(f"{row.category:<10s}  {row.queries:7d}  {row.responses:9d}"
              f"  {row.downloadable:12d}  {row.malicious:9d}"
              f"  {row.malicious_share:5.1%}")
    by_category = {row.category: row for row in rows}
    assert by_category["audio"].malicious_share > 0.95
    software_rows = [row for row in rows
                     if row.category in ("archive", "executable")]
    assert all(row.malicious_share < 0.9 for row in software_rows)
