"""Extension: the distinct-sample census behind the malicious responses.

"Most infections are from a very small number of distinct malware" --
the census makes that concrete: thousands of responses, about a dozen
byte-identical bodies.
"""

from repro.core.analysis.census import new_hosts_per_day, sample_census


def test_ext_sample_census(benchmark, limewire):
    samples = benchmark(sample_census, limewire.store)
    malicious = len(limewire.store.malicious_responses())
    print()
    print(f"{malicious} malicious responses, {len(samples)} distinct "
          "samples")
    print("responses  hosts  size (bytes)  malware")
    for sample in samples[:8]:
        print(f"{sample.responses:9d}  {sample.hosts:5d}  "
              f"{sample.size:12d}  {sample.malware_name}")
    assert malicious > 1000
    assert len(samples) <= 20
    assert samples[0].responses > malicious * 0.3
    fresh = new_hosts_per_day(limewire.store)
    assert sum(fresh) > 0
